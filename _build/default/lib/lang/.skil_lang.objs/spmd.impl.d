lib/lang/spmd.ml: Instantiate Interp Machine Parser Typecheck Value
