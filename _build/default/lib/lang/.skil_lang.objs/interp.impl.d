lib/lang/interp.ml: Array Ast Buffer Calibration Cost_model Darray Float Hashtbl Index List Machine Option Printf Skeletons String Typecheck Value
