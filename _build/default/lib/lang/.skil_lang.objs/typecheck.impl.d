lib/lang/typecheck.ml: Ast Hashtbl List Option Parser Printf
