lib/lang/value.ml: Array Char Darray Format Index List Printf String
