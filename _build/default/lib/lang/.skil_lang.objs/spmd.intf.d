lib/lang/spmd.mli: Ast Cost_model Machine Topology Value
