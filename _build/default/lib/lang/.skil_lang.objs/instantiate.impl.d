lib/lang/instantiate.ml: Ast Hashtbl List Option Parser Printf String Typecheck
