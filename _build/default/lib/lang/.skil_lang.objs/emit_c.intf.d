lib/lang/emit_c.mli: Ast
