let runtime_header =
  String.concat "\n"
    [
      "/* skil_runtime.h — interface of the precompiled parallel runtime";
      "   (message-passing implementations of the section 3 skeletons,";
      "   built on Parix virtual topologies).  Generic skeletons are";
      "   instantiated per element type by the Skil compiler; the";
      "   array_*_<n> instances emitted alongside a program are produced";
      "   from these templates. */";
      "#ifndef SKIL_RUNTIME_H";
      "#define SKIL_RUNTIME_H";
      "";
      "typedef int *Index;   /* one value per array dimension */";
      "typedef struct { Index lowerBd; Index upperBd; } *Bounds;";
      "";
      "#define DISTR_DEFAULT 0";
      "#define DISTR_RING    1";
      "#define DISTR_TORUS2D 2";
      "";
      "/* per-element-type instances are generated; the generic templates";
      "   have the following shapes (T, T1, T2 stand for element types): */";
      "/* Tarray array_create (int dim, Index size, Index blocksize,";
      "                        Index lowerbd, T init_elem (Index),";
      "                        int distr);                              */";
      "/* void   array_destroy (Tarray a);                              */";
      "/* void   array_map (T2 map_f (T1, Index), T1array from,";
      "                     T2array to);                                */";
      "/* T2     array_fold (T2 conv_f (T1, Index),";
      "                      T2 fold_f (T2, T2), T1array a);            */";
      "/* void   array_copy (Tarray from, Tarray to);                   */";
      "/* void   array_broadcast_part (Tarray a, Index ix);             */";
      "/* void   array_permute_rows (Tarray from, int perm_f (int),";
      "                              Tarray to);                        */";
      "/* void   array_gen_mult (Tarray a, Tarray b, T gen_add (T, T),";
      "                          T gen_mult (T, T), Tarray c);          */";
      "/* Bounds array_part_bounds (Tarray a);                          */";
      "/* T      array_get_elem (Tarray a, Index ix);                   */";
      "/* void   array_put_elem (Tarray a, Index ix, T newval);         */";
      "";
      "extern int procId;   /* this processor's rank */";
      "extern int nProcs;   /* number of processors  */";
      "";
      "void print_int (int n);";
      "void print_float (float f);";
      "void print_string (char *s);";
      "void print_char (char c);";
      "void error (char *message);";
      "void *skil_new (/* value */);   /* boxing allocator behind new() */";
      "";
      "#endif /* SKIL_RUNTIME_H */";
      "";
    ]

let skeleton_names =
  [
    "array_create"; "array_destroy"; "array_map"; "array_fold"; "array_copy";
    "array_broadcast_part"; "array_permute_rows"; "array_gen_mult";
  ]

(* ---------------- type mangling ---------------- *)

let rec flat = function
  | Ast.TInt -> "int"
  | Ast.TFloat -> "float"
  | Ast.TChar -> "char"
  | Ast.TVoid -> "void"
  | Ast.TString -> "string"
  | Ast.TIndex -> "Index"
  | Ast.TBounds -> "Bounds"
  | Ast.TPtr t -> flat t ^ "p"
  | Ast.TVar v -> "T" ^ v
  | Ast.TMeta _ -> "int"
  | Ast.TFun _ -> "fn"
  | Ast.TNamed (n, []) -> strip n
  | Ast.TNamed (n, args) ->
      strip n ^ "_" ^ String.concat "_" (List.map flat args)

and strip n =
  match String.index_opt n ' ' with
  | Some i -> String.sub n (i + 1) (String.length n - i - 1)
  | None -> n

let rec mangle_type = function
  | Ast.TInt -> "int"
  | Ast.TFloat -> "float"
  | Ast.TChar -> "char"
  | Ast.TVoid -> "void"
  | Ast.TString -> "char *"
  | Ast.TIndex -> "Index"
  | Ast.TBounds -> "Bounds"
  | Ast.TPtr t -> mangle_type t ^ " *"
  | Ast.TVar v -> "/*$" ^ v ^ "*/void *"
  | Ast.TMeta _ -> "int"
  | Ast.TFun (_, _) -> "void *"
  | Ast.TNamed ("array", [ t ]) -> flat t ^ "array"
  | Ast.TNamed (n, []) -> n
  | Ast.TNamed (n, args) when String.length n > 7 && String.sub n 0 7 = "struct "
    ->
      "struct " ^ strip n ^ "_" ^ String.concat "_" (List.map flat args)
  | Ast.TNamed (n, args) -> n ^ "_" ^ String.concat "_" (List.map flat args)

(* ---------------- type-instance collection ---------------- *)

let rec collect_types acc t =
  match t with
  | Ast.TNamed (_, args) as t ->
      let acc = if List.mem t acc then acc else acc @ [ t ] in
      List.fold_left collect_types acc args
  | Ast.TPtr t -> collect_types acc t
  | Ast.TFun (args, ret) ->
      collect_types (List.fold_left collect_types acc args) ret
  | _ -> acc

let rec stmt_types acc = function
  | Ast.SDecl (t, _, _) -> collect_types acc t
  | Ast.SIf (_, a, b) ->
      List.fold_left stmt_types (List.fold_left stmt_types acc a) b
  | Ast.SWhile (_, b) -> List.fold_left stmt_types acc b
  | Ast.SFor (i, _, _, b) ->
      let acc = match i with Some s -> stmt_types acc s | None -> acc in
      List.fold_left stmt_types acc b
  | Ast.SBlock b -> List.fold_left stmt_types acc b
  | Ast.SExpr _ | Ast.SReturn _ | Ast.SBreak | Ast.SContinue -> acc

let used_named_types program =
  List.fold_left
    (fun acc top ->
      match top with
      | Ast.TFunc f ->
          let acc = collect_types acc f.Ast.f_ret in
          let acc =
            List.fold_left
              (fun acc p -> collect_types acc p.Ast.p_type)
              acc f.Ast.f_params
          in
          (match f.Ast.f_body with
           | Some body -> List.fold_left stmt_types acc body
           | None -> acc)
      | _ -> acc)
    [] program

(* ---------------- expressions ---------------- *)

type ectx = {
  buf : Buffer.t;
  mutable instances : (string * string) list; (* comment, signature line *)
  mutable counter : int;
}

let float_literal f =
  let s = Printf.sprintf "%g" f in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
  then s
  else s ^ ".0"

let rec expr ec (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Int n -> string_of_int n
  | Ast.Float f -> float_literal f
  | Ast.Str s -> Printf.sprintf "%S" s
  | Ast.Chr c -> Printf.sprintf "%C" c
  | Ast.Var x -> x
  | Ast.OpSection op -> Printf.sprintf "(%s)" op
  | Ast.Call (f, args) -> call ec f args
  | Ast.Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr ec a) op (expr ec b)
  | Ast.Unop (op, a) -> Printf.sprintf "(%s%s)" op (expr ec a)
  | Ast.Assign (l, r) -> Printf.sprintf "%s = %s" (expr ec l) (expr ec r)
  | Ast.Idx (a, i) -> Printf.sprintf "%s[%s]" (expr ec a) (expr ec i)
  | Ast.Field (a, f) -> Printf.sprintf "%s.%s" (expr ec a) f
  | Ast.Arrow (a, f) -> Printf.sprintf "%s->%s" (expr ec a) f
  | Ast.Deref a -> Printf.sprintf "(*%s)" (expr ec a)
  | Ast.ArrayLit es ->
      "{" ^ String.concat "," (List.map (expr ec) es) ^ "}"
  | Ast.Cond (c, a, b) ->
      Printf.sprintf "(%s ? %s : %s)" (expr ec c) (expr ec a) (expr ec b)
  | Ast.New a -> Printf.sprintf "skil_new(%s)" (expr ec a)

(* Which argument positions of each skeleton are functional. *)
and functional_positions = function
  | "array_create" -> [ 4 ]
  | "array_map" -> [ 0 ]
  | "array_fold" -> [ 0; 1 ]
  | "array_permute_rows" -> [ 1 ]
  | "array_gen_mult" -> [ 2; 3 ]
  | _ -> []

(* A call of a skeleton whose functional arguments carry lifted data (i.e.
   partial applications) or operators becomes a numbered first-order
   instance with the lifted arguments in front — the paper's array_map_1
   example.  Bare function names stay as they are: those "could be simulated
   in C by passing pointers to functions" (section 2.1). *)
and call ec f args =
  match f.Ast.desc with
  | Ast.Var name when List.mem name skeleton_names ->
      let fpos = functional_positions name in
      let funarg i (a : Ast.expr) =
        if not (List.mem i fpos) then None
        else
          match a.Ast.desc with
          | Ast.OpSection op -> Some (Printf.sprintf "(%s)" op, [])
          | Ast.Call ({ Ast.desc = Ast.OpSection op; _ }, lifted) ->
              Some (Printf.sprintf "(%s)" op, lifted)
          | Ast.Call ({ Ast.desc = Ast.Var g; _ }, lifted) -> Some (g, lifted)
          | _ -> None
      in
      let descrs = List.mapi (fun i a -> (a, funarg i a)) args in
      let needs_instance =
        List.exists
          (function _, Some (g, lifted) -> lifted <> [] || g.[0] = '('
                  | _, None -> false)
          descrs
      in
      if not (needs_instance) then plain_call ec (expr ec f) args
      else begin
        ec.counter <- ec.counter + 1;
        let iname = Printf.sprintf "%s_%d" name ec.counter in
        let lifted_args =
          List.concat_map
            (function _, Some (_, lifted) -> List.map (expr ec) lifted
                    | _, None -> [])
            descrs
        in
        let data_args =
          List.filter_map
            (function _, Some _ -> None | a, None -> Some (expr ec a))
            descrs
        in
        ec.instances <-
          ( iname,
            Printf.sprintf "instance of %s with %s inlined" name
              (String.concat ", "
                 (List.filter_map
                    (function _, Some (g, _) -> Some g | _, None -> None)
                    descrs)) )
          :: ec.instances;
        Printf.sprintf "%s (%s)" iname
          (String.concat ", " (lifted_args @ data_args))
      end
  | _ -> plain_call ec (expr ec f) args

and plain_call ec fstr args =
  Printf.sprintf "%s (%s)" fstr (String.concat ", " (List.map (expr ec) args))

(* ---------------- statements ---------------- *)

let rec stmt ec indent s =
  let pad = String.make indent ' ' in
  match s with
  | Ast.SExpr e -> pad ^ expr ec e ^ ";\n"
  | Ast.SDecl (t, n, init) ->
      pad ^ mangle_type t ^ " " ^ n
      ^ (match init with Some e -> " = " ^ expr ec e | None -> "")
      ^ ";\n"
  | Ast.SIf (c, a, []) ->
      pad ^ "if (" ^ expr ec c ^ ") {\n" ^ block ec (indent + 2) a ^ pad
      ^ "}\n"
  | Ast.SIf (c, a, b) ->
      pad ^ "if (" ^ expr ec c ^ ") {\n" ^ block ec (indent + 2) a ^ pad
      ^ "} else {\n" ^ block ec (indent + 2) b ^ pad ^ "}\n"
  | Ast.SWhile (c, b) ->
      pad ^ "while (" ^ expr ec c ^ ") {\n" ^ block ec (indent + 2) b ^ pad
      ^ "}\n"
  | Ast.SFor (i, c, stp, b) ->
      let istr =
        match i with
        | Some (Ast.SDecl (t, n, Some e)) ->
            mangle_type t ^ " " ^ n ^ " = " ^ expr ec e
        | Some (Ast.SExpr e) -> expr ec e
        | Some _ | None -> ""
      in
      pad ^ "for (" ^ istr ^ "; "
      ^ (match c with Some c -> expr ec c | None -> "")
      ^ "; "
      ^ (match stp with Some s -> expr ec s | None -> "")
      ^ ") {\n" ^ block ec (indent + 2) b ^ pad ^ "}\n"
  | Ast.SReturn None -> pad ^ "return;\n"
  | Ast.SReturn (Some e) -> pad ^ "return " ^ expr ec e ^ ";\n"
  | Ast.SBreak -> pad ^ "break;\n"
  | Ast.SContinue -> pad ^ "continue;\n"
  | Ast.SBlock b -> pad ^ "{\n" ^ block ec (indent + 2) b ^ pad ^ "}\n"

and block ec indent stmts = String.concat "" (List.map (stmt ec indent) stmts)

(* ---------------- program ---------------- *)

let find_struct program name =
  List.find_map
    (function
      | Ast.TStruct s when s.Ast.s_name = name -> Some s
      | _ -> None)
    program

let find_typedef program name =
  List.find_map
    (function
      | Ast.TTypedef td when td.Ast.td_name = name -> Some td
      | _ -> None)
    program

let rec subst_simple s = function
  | Ast.TVar v as t -> (
      match List.assoc_opt v s with Some t' -> t' | None -> t)
  | Ast.TPtr t -> Ast.TPtr (subst_simple s t)
  | Ast.TNamed (n, args) -> Ast.TNamed (n, List.map (subst_simple s) args)
  | Ast.TFun (a, r) -> Ast.TFun (List.map (subst_simple s) a, subst_simple s r)
  | t -> t

let emit_type_instances buf program =
  let used = used_named_types program in
  List.iter
    (fun t ->
      match t with
      | Ast.TNamed ("array", [ elem ]) ->
          Buffer.add_string buf
            (Printf.sprintf
               "typedef struct { /* hidden pardata implementation */ } \
                *%sarray;\n"
               (flat elem))
      | Ast.TNamed (n, args) -> (
          match find_struct program n with
          | Some sd when args <> [] ->
              let s =
                try List.combine sd.Ast.s_params args
                with Invalid_argument _ -> []
              in
              Buffer.add_string buf (mangle_type t ^ " {\n");
              List.iter
                (fun (ft, fname) ->
                  Buffer.add_string buf
                    ("  " ^ mangle_type (subst_simple s ft) ^ " " ^ fname
                   ^ ";\n"))
                sd.Ast.s_fields;
              Buffer.add_string buf "};\n"
          | _ -> (
              match find_typedef program n with
              | Some td when args <> [] ->
                  let s =
                    try List.combine td.Ast.td_params args
                    with Invalid_argument _ -> []
                  in
                  Buffer.add_string buf
                    ("typedef "
                    ^ mangle_type (subst_simple s td.Ast.td_type)
                    ^ " " ^ mangle_type t ^ ";\n")
              | _ -> ()))
      | _ -> ())
    used;
  Buffer.add_char buf '\n'

let program (prog : Ast.program) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "/* generated by the Skil compiler (translation by instantiation) */\n";
  Buffer.add_string buf "#include \"skil_runtime.h\"\n\n";
  emit_type_instances buf prog;
  let ec = { buf; instances = []; counter = 0 } in
  let bodies = Buffer.create 4096 in
  List.iter
    (function
      | Ast.TFunc f when f.Ast.f_body <> None ->
          let params =
            String.concat ", "
              (List.map
                 (fun p -> mangle_type p.Ast.p_type ^ " " ^ p.Ast.p_name)
                 f.Ast.f_params)
          in
          Buffer.add_string bodies
            (Printf.sprintf "%s %s (%s) {\n%s}\n\n"
               (mangle_type f.Ast.f_ret) f.Ast.f_name params
               (block ec 2 (Option.get f.Ast.f_body)))
      | _ -> ())
    prog;
  List.iter
    (fun (iname, comment) ->
      Buffer.add_string buf (Printf.sprintf "/* %s: %s */\n" iname comment))
    (List.rev ec.instances);
  Buffer.add_char buf '\n';
  Buffer.add_buffer buf bodies;
  Buffer.contents buf
