(** Translation by instantiation (paper section 2.4 and [Botorog & Kuchen,
    CC '96]): turn a type-checked program with polymorphic higher-order
    functions and partial applications into first-order monomorphic
    functions.

    - functional arguments of HOFs are inlined into specialized copies of
      those HOFs;
    - data arguments captured by partial applications are {e lifted}: they
      become extra parameters of the specialization, evaluated at the call
      site (the paper's [array_map_1 (t, A, B)] example);
    - operator sections are inlined as operators;
    - a polymorphic function becomes one monomorphic instance per
      type/functional-argument combination occurring in the program.

    Calls to the builtin skeletons remain (their bodies are precompiled
    parallel code in the runtime, as in the paper), but their functional
    arguments are reduced to direct references to generated first-order
    functions.

    The supported functional arguments are function names, operator
    sections, and partial applications of either — the same restriction the
    paper imposes on recursively defined HOFs. *)

exception Unsupported of { line : int; message : string }

val program :
  Typecheck.env -> Ast.program -> entries:string list -> Ast.program
(** Instantiate everything reachable from the named entry functions (which
    must be monomorphic and first-order).  The result contains only
    first-order monomorphic user functions; entry names are preserved.
    @raise Unsupported when a functional argument is not expressible
    (e.g. a run-time-computed function). *)

val is_first_order : Ast.program -> bool
(** True when no user function has functional parameters or type variables —
    holds for every output of {!program} (checked in tests). *)
