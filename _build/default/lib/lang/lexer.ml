exception Error of { line : int; col : int; message : string }

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
   | Some '\n' ->
       st.line <- st.line + 1;
       st.col <- 1
   | Some _ -> st.col <- st.col + 1
   | None -> ());
  st.pos <- st.pos + 1

let error st message = raise (Error { line = st.line; col = st.col; message })

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_ws st
  | Some '/' when peek2 st = Some '/' ->
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      skip_ws st
  | Some '#' ->
      (* preprocessor lines (#include etc.) are ignored, as in the paper's
         C-based front end *)
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      skip_ws st
  | Some '/' when peek2 st = Some '*' ->
      advance st;
      advance st;
      let rec go () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | None, _ -> error st "unterminated comment"
        | _ ->
            advance st;
            go ()
      in
      go ();
      skip_ws st
  | _ -> ()

let lex_number st =
  let start = st.pos in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_float =
    match (peek st, peek2 st) with
    | Some '.', Some c when is_digit c -> true
    | Some '.', (Some _ | None) -> true
    | _ -> false
  in
  if is_float then begin
    advance st;
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    (match peek st with
     | Some ('e' | 'E') ->
         advance st;
         (match peek st with Some ('+' | '-') -> advance st | _ -> ());
         while (match peek st with Some c -> is_digit c | None -> false) do
           advance st
         done
     | _ -> ());
    Token.FLOAT (float_of_string (String.sub st.src start (st.pos - start)))
  end
  else Token.INT (int_of_string (String.sub st.src start (st.pos - start)))

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_alnum c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  if List.mem s Token.keywords then Token.KW s else Token.IDENT s

let lex_string st =
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> Buffer.add_char buf '\n'; advance st; go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance st; go ()
        | Some c -> Buffer.add_char buf c; advance st; go ()
        | None -> error st "unterminated escape")
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Token.STRING (Buffer.contents buf)

let section_ops =
  [ "=="; "!="; "<="; ">="; "&&"; "||"; "+"; "-"; "*"; "/"; "%"; "<"; ">" ]

(* Try to lex an operator section "( op )" starting at the '('. *)
let try_section st =
  let save = (st.pos, st.line, st.col) in
  advance st (* '(' *);
  skip_ws st;
  let matched =
    List.find_opt
      (fun op ->
        let l = String.length op in
        st.pos + l <= String.length st.src
        && String.sub st.src st.pos l = op)
      section_ops
  in
  match matched with
  | Some op ->
      let l = String.length op in
      for _ = 1 to l do
        advance st
      done;
      skip_ws st;
      if peek st = Some ')' then begin
        advance st;
        Some (Token.OPSECTION op)
      end
      else begin
        let p, li, c = save in
        st.pos <- p;
        st.line <- li;
        st.col <- c;
        None
      end
  | None ->
      let p, li, c = save in
      st.pos <- p;
      st.line <- li;
      st.col <- c;
      None

let two_char_puncts =
  [ "->"; "=="; "!="; "<="; ">="; "&&"; "||"; "++"; "--"; "+="; "-="; "*=";
    "/="; "%=" ]

let lex_punct st =
  let two =
    if st.pos + 2 <= String.length st.src then
      Some (String.sub st.src st.pos 2)
    else None
  in
  match two with
  | Some p when List.mem p two_char_puncts ->
      advance st;
      advance st;
      Token.PUNCT p
  | _ ->
      let c = match peek st with Some c -> c | None -> assert false in
      advance st;
      Token.PUNCT (String.make 1 c)

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let toks = ref [] in
  let emit line col tok = toks := { Token.tok; line; col } :: !toks in
  let rec go () =
    skip_ws st;
    let line = st.line and col = st.col in
    match peek st with
    | None -> emit line col Token.EOF
    | Some c when is_digit c ->
        emit line col (lex_number st);
        go ()
    | Some c when is_alpha c ->
        emit line col (lex_ident st);
        go ()
    | Some '$' ->
        advance st;
        let start = st.pos in
        while (match peek st with Some c -> is_alnum c | None -> false) do
          advance st
        done;
        if st.pos = start then error st "expected identifier after '$'";
        emit line col (Token.TYVAR (String.sub st.src start (st.pos - start)));
        go ()
    | Some '"' ->
        emit line col (lex_string st);
        go ()
    | Some '\'' ->
        advance st;
        let c =
          match peek st with
          | Some '\\' ->
              advance st;
              (match peek st with
               | Some 'n' -> '\n'
               | Some 't' -> '\t'
               | Some c -> c
               | None -> error st "unterminated char literal")
          | Some c -> c
          | None -> error st "unterminated char literal"
        in
        advance st;
        if peek st <> Some '\'' then error st "unterminated char literal";
        advance st;
        emit line col (Token.CHAR c);
        go ()
    | Some '(' -> (
        match try_section st with
        | Some tok ->
            emit line col tok;
            go ()
        | None ->
            advance st;
            emit line col (Token.PUNCT "(");
            go ())
    | Some
        ( ')' | '{' | '}' | '[' | ']' | ';' | ',' | '.' | '<' | '>' | '='
        | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '!' | '?' | ':' ) ->
        emit line col (lex_punct st);
        go ()
    | Some c -> error st (Printf.sprintf "unexpected character %C" c)
  in
  go ();
  List.rev !toks
