let check = Alcotest.(check int)

let test_mesh_hops () =
  let t = Topology.mesh ~width:4 ~height:4 in
  check "self" 0 (Topology.hops t 5 5);
  check "adjacent" 1 (Topology.hops t 0 1);
  check "row" 3 (Topology.hops t 0 3);
  check "corner to corner" 6 (Topology.hops t 0 15);
  check "manhattan" (Topology.hops t 2 9) (Topology.hops t 9 2)

let test_grid_coords () =
  let t = Topology.mesh ~width:4 ~height:2 in
  Alcotest.(check (pair int int)) "rank 5" (1, 1) (Topology.grid_coords t 5);
  check "roundtrip" 5 (Topology.rank_of_grid t (Topology.grid_coords t 5));
  check "wrap x" 3 (Topology.rank_of_grid t (-1, 0));
  check "wrap y" 1 (Topology.rank_of_grid t (1, -2))

let test_ring_neighbors () =
  let t = Topology.ring ~nprocs:6 in
  check "next wraps" 0 (Topology.ring_next t 5);
  check "prev wraps" 5 (Topology.ring_prev t 0);
  for i = 0 to 5 do
    check "next/prev inverse" i (Topology.ring_prev t (Topology.ring_next t i))
  done

let test_ring_embedding_short () =
  (* Optimized ring embedding: every ring edge, wrap-around included, is at
     most 2 mesh hops. *)
  let t = Topology.ring ~nprocs:12 in
  for i = 0 to 11 do
    let j = Topology.ring_next t i in
    Alcotest.(check bool)
      (Printf.sprintf "edge %d->%d short" i j)
      true
      (Topology.hops t i j <= 2)
  done

let test_torus_neighbors_short () =
  let t = Topology.torus2d ~width:4 ~height:4 () in
  for r = 0 to 15 do
    List.iter
      (fun dir ->
        let nb = Topology.torus_neighbor t r dir in
        Alcotest.(check bool) "torus edge short" true (Topology.hops t r nb <= 2))
      [ `North; `South; `East; `West ]
  done

let test_torus_naive_long_wrap () =
  let t = Topology.torus2d ~embedding_optimized:false ~width:8 ~height:1 () in
  let nb = Topology.torus_neighbor t 0 `West in
  check "west of 0 wraps" 7 nb;
  check "naive wrap is the full row" 7 (Topology.hops t 0 nb)

let test_torus_neighbor_directions () =
  let t = Topology.torus2d ~width:4 ~height:4 () in
  check "east" 6 (Topology.torus_neighbor t 5 `East);
  check "west" 4 (Topology.torus_neighbor t 5 `West);
  check "north" 1 (Topology.torus_neighbor t 5 `North);
  check "south" 9 (Topology.torus_neighbor t 5 `South);
  check "west wrap" 3 (Topology.torus_neighbor t 0 `West);
  check "north wrap" 12 (Topology.torus_neighbor t 0 `North)

let test_square_side () =
  Alcotest.(check (option int))
    "square" (Some 3)
    (Topology.square_side (Topology.torus2d ~width:3 ~height:3 ()));
  Alcotest.(check (option int))
    "not square" None
    (Topology.square_side (Topology.mesh ~width:4 ~height:2))

let test_embedding_is_permutation () =
  List.iter
    (fun t ->
      let n = Topology.nprocs t in
      let seen = Hashtbl.create n in
      for r = 0 to n - 1 do
        let x, y = Topology.mesh_position t r in
        Alcotest.(check bool) "in mesh" true
          (x >= 0 && x < Topology.width t && y >= 0 && y < Topology.height t);
        Alcotest.(check bool) "distinct" false (Hashtbl.mem seen (x, y));
        Hashtbl.add seen (x, y) ()
      done)
    [
      Topology.mesh ~width:5 ~height:3;
      Topology.ring ~nprocs:10;
      Topology.torus2d ~width:5 ~height:4 ();
      Topology.torus2d ~embedding_optimized:false ~width:3 ~height:3 ();
    ]

let test_invalid () =
  Alcotest.check_raises "zero width" (Invalid_argument
    "Topology.create: non-positive grid dimension") (fun () ->
      ignore (Topology.mesh ~width:0 ~height:2))

let suite =
  [
    ( "topology",
      [
        Alcotest.test_case "mesh hops" `Quick test_mesh_hops;
        Alcotest.test_case "grid coords" `Quick test_grid_coords;
        Alcotest.test_case "ring neighbors" `Quick test_ring_neighbors;
        Alcotest.test_case "ring embedding short" `Quick
          test_ring_embedding_short;
        Alcotest.test_case "torus edges short" `Quick test_torus_neighbors_short;
        Alcotest.test_case "naive wrap long" `Quick test_torus_naive_long_wrap;
        Alcotest.test_case "torus directions" `Quick
          test_torus_neighbor_directions;
        Alcotest.test_case "square side" `Quick test_square_side;
        Alcotest.test_case "embedding is a permutation" `Quick
          test_embedding_is_permutation;
        Alcotest.test_case "invalid args" `Quick test_invalid;
      ] );
  ]
