(* The introduction's d&c instantiations: integration, polynomial
   evaluation, FFT — checked against analytic/naive references on several
   machine sizes. *)

let run ~procs f =
  (Machine.run ~topology:(Topology.mesh ~width:procs ~height:1) f)
    .Machine.values

let test_integrate_sin () =
  List.iter
    (fun procs ->
      let r =
        run ~procs (fun ctx ->
            Dc_apps.integrate ctx ~f:sin ~lo:0.0 ~hi:Float.pi ())
      in
      match r.(0) with
      | Some v ->
          Alcotest.(check (float 1e-6))
            (Printf.sprintf "int sin on %d procs" procs)
            2.0 v
      | None -> Alcotest.fail "no result on root")
    [ 1; 2; 3; 4; 8 ]

let test_integrate_polynomial_exact () =
  (* Simpson is exact for cubics *)
  let r =
    run ~procs:4 (fun ctx ->
        Dc_apps.integrate ctx ~levels:3
          ~f:(fun x -> (x *. x *. x) -. (2.0 *. x) +. 1.0)
          ~lo:0.0 ~hi:2.0 ())
  in
  Alcotest.(check (float 1e-12)) "cubic" 2.0 (Option.get r.(0))

let horner coeffs x =
  Array.fold_right (fun c acc -> (acc *. x) +. c) coeffs 0.0

let test_poly_eval () =
  let coeffs = Array.init 13 (fun i -> float_of_int ((i * 7 mod 5) - 2)) in
  List.iter
    (fun (procs, x) ->
      let r = run ~procs (fun ctx -> Dc_apps.poly_eval ctx ~coeffs ~x) in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p(%g) on %d procs" x procs)
        (horner coeffs x)
        (Option.get r.(0)))
    [ (1, 0.5); (2, -1.25); (4, 2.0); (5, 0.0) ]

let test_poly_eval_single_coeff () =
  let r =
    run ~procs:2 (fun ctx -> Dc_apps.poly_eval ctx ~coeffs:[| 7.5 |] ~x:3.0)
  in
  Alcotest.(check (float 1e-12)) "constant poly" 7.5 (Option.get r.(0))

let close_complex eps (ar, ai) (br, bi) =
  Float.abs (ar -. br) < eps && Float.abs (ai -. bi) < eps

let test_fft_matches_dft () =
  let n = 16 in
  let signal =
    Array.init n (fun i ->
        ( float_of_int (Workload.hash2 ~seed:4 i 0 mod 100) /. 50.0,
          float_of_int (Workload.hash2 ~seed:5 i 1 mod 100) /. 50.0 ))
  in
  let expected = Dc_apps.dft_reference signal in
  List.iter
    (fun procs ->
      let r = run ~procs (fun ctx -> Dc_apps.fft ctx signal) in
      let got = Option.get r.(0) in
      Alcotest.(check int) "length" n (Array.length got);
      Array.iteri
        (fun k g ->
          Alcotest.(check bool)
            (Printf.sprintf "bin %d on %d procs" k procs)
            true
            (close_complex 1e-9 expected.(k) g))
        got)
    [ 1; 2; 4 ]

let test_fft_impulse () =
  (* FFT of a unit impulse is flat ones *)
  let n = 8 in
  let signal = Array.init n (fun i -> if i = 0 then (1.0, 0.0) else (0.0, 0.0)) in
  let r = run ~procs:2 (fun ctx -> Dc_apps.fft ctx signal) in
  Array.iter
    (fun c -> Alcotest.(check bool) "flat spectrum" true
        (close_complex 1e-12 (1.0, 0.0) c))
    (Option.get r.(0))

let test_fft_rejects_non_power_of_two () =
  let r =
    run ~procs:2 (fun ctx ->
        try
          ignore (Dc_apps.fft ctx (Array.make 6 (0.0, 0.0)));
          false
        with Invalid_argument _ -> true)
  in
  Alcotest.(check bool) "rejected" true r.(0)

let suite =
  [
    ( "d&c applications",
      [
        Alcotest.test_case "integrate sin" `Quick test_integrate_sin;
        Alcotest.test_case "integrate cubic exactly" `Quick
          test_integrate_polynomial_exact;
        Alcotest.test_case "poly eval" `Quick test_poly_eval;
        Alcotest.test_case "poly constant" `Quick test_poly_eval_single_coeff;
        Alcotest.test_case "fft vs dft" `Quick test_fft_matches_dft;
        Alcotest.test_case "fft impulse" `Quick test_fft_impulse;
        Alcotest.test_case "fft non-power rejected" `Quick
          test_fft_rejects_non_power_of_two;
      ] );
  ]
