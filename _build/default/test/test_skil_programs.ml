(* The shipped .skil example programs: parse, type-check, instantiate, run
   on the simulated machine, and validate results against OCaml references. *)

let read path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let source name =
  let candidates =
    [
      "../examples/skil/" ^ name;
      "examples/skil/" ^ name;
      "../../../examples/skil/" ^ name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> read p
  | None -> Alcotest.failf "cannot find %s" name

let all_programs = [ "quicksort.skil"; "shpaths.skil"; "gauss.skil";
                     "matmul.skil"; "threshold.skil" ]

let test_all_typecheck () =
  List.iter
    (fun name ->
      let p = Parser.parse (source name) in
      ignore (Typecheck.check p);
      Alcotest.(check pass) name () ())
    all_programs

let test_all_instantiate_first_order () =
  List.iter
    (fun (name, entry) ->
      let p = Parser.parse (source name) in
      let env = Typecheck.check p in
      let fo = Instantiate.program env p ~entries:[ entry ] in
      Alcotest.(check bool) (name ^ " first order") true
        (Instantiate.is_first_order fo);
      Alcotest.(check bool) (name ^ " emits C") true
        (String.length (Emit_c.program fo) > 100))
    [
      ("quicksort.skil", "main"); ("shpaths.skil", "shpaths");
      ("gauss.skil", "gauss"); ("matmul.skil", "matmul");
      ("threshold.skil", "main");
    ]

let test_quicksort_runs_sorted () =
  let p = Parser.parse (source "quicksort.skil") in
  let env = Typecheck.check p in
  let st = Interp.make ~tyenv:env p in
  ignore (Interp.call st "main" []);
  Alcotest.(check string) "sorted" "1 1 2 3 4 5 6 9 " (Interp.output st)

(* the init_system function of gauss.skil, mirrored in OCaml *)
let gauss_skil_matrix _n ix =
  let i = ix.(0) and j = ix.(1) in
  if j = i + 1 then float_of_int (19 - (((i * 7) + (j * 3)) mod 17))
  else if i = j then
    if i mod 3 = 0 then 0.0 else float_of_int (20 + (i * 5 mod 11))
  else float_of_int ((((i * 13) + (j * 29)) mod 7) - 3) /. 8.0

let test_gauss_skil_matches_reference () =
  let n = 8 in
  let r =
    Spmd.run_source ~topology:(Topology.mesh ~width:2 ~height:1)
      (source "gauss.skil") ~entry:"gauss" ~args:[ Value.VInt n ]
  in
  (* collect the printed x slices in rank order *)
  let printed =
    String.concat ""
      (Array.to_list
         (Array.map (fun o -> o.Spmd.printed) r.Machine.values))
  in
  let xs =
    String.split_on_char ' ' (String.trim printed)
    |> List.filter (fun s -> s <> "")
    |> List.map float_of_string
  in
  Alcotest.(check int) "n solution values" n (List.length xs);
  let x = Array.of_list xs in
  let residual = Gauss.residual ~n ~matrix:(gauss_skil_matrix n) x in
  Alcotest.(check bool)
    (Printf.sprintf "residual %.2e small" residual)
    true (residual < 1e-3)

let test_gauss_skil_instantiated_same_output () =
  let n = 8 in
  let run instantiate =
    let r =
      Spmd.run_source ~instantiate ~topology:(Topology.mesh ~width:2 ~height:1)
        (source "gauss.skil") ~entry:"gauss" ~args:[ Value.VInt n ]
    in
    String.concat "|"
      (Array.to_list (Array.map (fun o -> o.Spmd.printed) r.Machine.values))
  in
  Alcotest.(check string) "direct = instantiated" (run false) (run true)

(* matmul.skil's initializers, mirrored *)
let matmul_a ix = float_of_int (((ix.(0) * 3) + ix.(1)) mod 5) /. 2.0
let matmul_b ix = float_of_int ((ix.(0) + (ix.(1) * 7)) mod 4) -. 1.5

let test_matmul_skil_matches_reference () =
  let n = 8 in
  let r =
    Spmd.run_source ~topology:(Topology.torus2d ~width:2 ~height:2 ())
      (source "matmul.skil") ~entry:"matmul" ~args:[ Value.VInt n ]
  in
  let reference = Matmul.reference ~n ~a:matmul_a ~b:matmul_b in
  let expected =
    "c[0][0..3] = "
    ^ String.concat ""
        (List.init 4 (fun j -> Printf.sprintf "%g " reference.(j)))
  in
  Alcotest.(check string) "row excerpt" expected
    (r.Machine.values.(0)).Spmd.printed

let test_shpaths_skil_from_file () =
  let n = 16 in
  let weight ix =
    if ix.(0) = ix.(1) then 0 else 1 + (((ix.(0) * 7) + (ix.(1) * 13)) mod 9)
  in
  let fw = Shortest_paths.floyd_warshall ~n ~weight in
  let expected =
    "distances from node 0: "
    ^ String.concat ""
        (List.init (n / 2) (fun j -> string_of_int fw.(j) ^ " "))
  in
  let r =
    Spmd.run_source ~topology:(Topology.torus2d ~width:2 ~height:2 ())
      (source "shpaths.skil") ~entry:"shpaths" ~args:[ Value.VInt n ]
  in
  Alcotest.(check string) "distances" expected
    (r.Machine.values.(0)).Spmd.printed

let test_threshold_from_file () =
  let r =
    Spmd.run_source ~topology:(Topology.mesh ~width:2 ~height:1)
      (source "threshold.skil") ~entry:"main" ~args:[ Value.VInt 8 ]
  in
  (* rank 0 owns elements 0..3 with values 0, .25, .5, .75 -> all below 1.0 *)
  Alcotest.(check string) "rank 0 flags" "flags of my partition: 0000"
    (r.Machine.values.(0)).Spmd.printed

let test_gauss_skil_profiles_ranked () =
  (* the same Skil source is slower as DPFL and the ranking is stable *)
  let n = 8 in
  let time profile =
    (Spmd.run_source ~cost:(Cost_model.make profile)
       ~topology:(Topology.mesh ~width:2 ~height:1) (source "gauss.skil")
       ~entry:"gauss" ~args:[ Value.VInt n ])
      .Machine.time
  in
  let skil = time Cost_model.skil and dpfl = time Cost_model.dpfl in
  Alcotest.(check bool)
    (Printf.sprintf "dpfl %.4f > skil %.4f" dpfl skil)
    true (dpfl > skil)

let suite =
  [
    ( "skil programs",
      [
        Alcotest.test_case "all typecheck" `Quick test_all_typecheck;
        Alcotest.test_case "all instantiate + emit" `Quick
          test_all_instantiate_first_order;
        Alcotest.test_case "quicksort sorted" `Quick test_quicksort_runs_sorted;
        Alcotest.test_case "gauss vs reference" `Quick
          test_gauss_skil_matches_reference;
        Alcotest.test_case "gauss instantiated equal" `Quick
          test_gauss_skil_instantiated_same_output;
        Alcotest.test_case "matmul vs reference" `Quick
          test_matmul_skil_matches_reference;
        Alcotest.test_case "shpaths from file" `Quick
          test_shpaths_skil_from_file;
        Alcotest.test_case "threshold from file" `Quick
          test_threshold_from_file;
        Alcotest.test_case "profiles ranked" `Quick
          test_gauss_skil_profiles_ranked;
      ] );
  ]
