test/test_skil_programs.ml: Alcotest Array Cost_model Emit_c Gauss Instantiate Interp List Machine Matmul Parser Printf Shortest_paths Spmd String Sys Topology Typecheck Value
