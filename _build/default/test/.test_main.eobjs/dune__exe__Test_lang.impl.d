test/test_lang.ml: Alcotest Array Ast Emit_c Instantiate Interp Lexer List Machine Parser Printf Shortest_paths Spmd String Token Topology Typecheck Value
