test/test_extensions.ml: Alcotest Array Darray List Machine Par_io Printf Skeletons Stats Stencil Task_skel Topology
