test/test_harness.ml: Alcotest Experiments Lazy List Printf Series String Table
