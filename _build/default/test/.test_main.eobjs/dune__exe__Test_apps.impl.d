test/test_apps.ml: Alcotest Array Darray Float Gauss Heat List Machine Matmul Printf Shortest_paths Skeletons Topology Workload
