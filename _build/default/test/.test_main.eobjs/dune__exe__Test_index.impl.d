test/test_index.ml: Alcotest Array Index List
