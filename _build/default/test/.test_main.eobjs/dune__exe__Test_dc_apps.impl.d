test/test_dc_apps.ml: Alcotest Array Dc_apps Float List Machine Option Printf Topology Workload
