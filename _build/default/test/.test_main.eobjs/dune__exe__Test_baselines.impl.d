test/test_baselines.ml: Alcotest Array Cost_model Dpfl Float Gauss List Machine Matmul Parix_c Printf Shortest_paths Topology Workload
