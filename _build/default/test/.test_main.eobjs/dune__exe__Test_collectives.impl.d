test/test_collectives.ml: Alcotest Array Collectives List Machine Printf Topology
