test/test_machine.ml: Alcotest Array Cost_model List Machine Scheduler Stats String Topology Trace
