test/test_darray.ml: Alcotest Array Calibration Darray Distribution Fun Index List
