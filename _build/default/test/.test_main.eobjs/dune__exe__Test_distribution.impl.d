test/test_distribution.ml: Alcotest Array Distribution Index List
