test/test_topology.ml: Alcotest Hashtbl List Printf Topology
