test/test_skeletons.ml: Alcotest Array Collectives Cost_model Darray Fun Index List Machine Printf Skeletons Topology
