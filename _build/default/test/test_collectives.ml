let run ~procs f =
  Machine.run ~topology:(Topology.mesh ~width:procs ~height:1) f

let sizes = [ 1; 2; 3; 4; 5; 7; 8; 13; 16 ]

let test_bcast () =
  List.iter
    (fun p ->
      for root = 0 to min 2 (p - 1) do
        let r =
          run ~procs:p (fun ctx ->
              let v = if Machine.self ctx = root then 4242 else -1 in
              Collectives.bcast ctx ~tag:0 ~root ~bytes:4 v)
        in
        Array.iteri
          (fun i v ->
            Alcotest.(check int)
              (Printf.sprintf "p=%d root=%d rank=%d" p root i)
              4242 v)
          r.Machine.values
      done)
    sizes

let test_reduce_sum () =
  List.iter
    (fun p ->
      let r =
        run ~procs:p (fun ctx ->
            Collectives.reduce ctx ~tag:0 ~root:0 ~bytes:4 ( + )
              (Machine.self ctx + 1))
      in
      Alcotest.(check int)
        (Printf.sprintf "sum p=%d" p)
        (p * (p + 1) / 2)
        r.Machine.values.(0))
    sizes

let test_allreduce_max () =
  List.iter
    (fun p ->
      let r =
        run ~procs:p (fun ctx ->
            Collectives.allreduce ctx ~tag:0 ~bytes:4 max
              ((Machine.self ctx * 37) mod 11))
      in
      let expected = Array.fold_left max min_int r.Machine.values in
      Array.iter
        (fun v -> Alcotest.(check int) "all equal max" expected v)
        r.Machine.values)
    sizes

let test_allreduce_nonroot_value () =
  let r =
    run ~procs:5 (fun ctx ->
        Collectives.allreduce ctx ~tag:0 ~bytes:4 ( + ) (Machine.self ctx))
  in
  Array.iter (fun v -> Alcotest.(check int) "sum 0..4" 10 v) r.Machine.values

let test_barrier_aligns_clocks () =
  let r =
    run ~procs:4 (fun ctx ->
        (* rank 3 is slow; after the barrier nobody's clock may be behind
           the time rank 3 entered it *)
        if Machine.self ctx = 3 then Machine.compute ctx 5.0;
        Collectives.barrier ctx ~tag:0;
        Machine.clock ctx)
  in
  Array.iter
    (fun c -> Alcotest.(check bool) "clock past barrier" true (c >= 5.0))
    r.Machine.values

let test_scan () =
  List.iter
    (fun p ->
      let r =
        run ~procs:p (fun ctx ->
            Collectives.scan ctx ~tag:0 ~bytes:4 ( + ) (Machine.self ctx + 1))
      in
      Array.iteri
        (fun i v ->
          Alcotest.(check int)
            (Printf.sprintf "prefix p=%d i=%d" p i)
            ((i + 1) * (i + 2) / 2)
            v)
        r.Machine.values)
    sizes

let test_gather () =
  let r =
    run ~procs:6 (fun ctx ->
        Collectives.gather_to ctx ~tag:0 ~root:2 ~bytes:4
          (Machine.self ctx * Machine.self ctx))
  in
  Array.iteri
    (fun i v ->
      match (i, v) with
      | 2, Some arr ->
          Alcotest.(check (array int))
            "gathered"
            [| 0; 1; 4; 9; 16; 25 |]
            arr
      | 2, None -> Alcotest.fail "root got nothing"
      | _, Some _ -> Alcotest.fail "non-root got a result"
      | _, None -> ())
    r.Machine.values

let test_ring_shift () =
  let r =
    run ~procs:5 (fun ctx ->
        let topo = Machine.topology ctx in
        let me = Machine.self ctx in
        Collectives.ring_shift ctx ~tag:0 ~bytes:4
          ~dest:(Topology.ring_next topo me)
          ~src:(Topology.ring_prev topo me)
          me)
  in
  Alcotest.(check (array int)) "rotated" [| 4; 0; 1; 2; 3 |] r.Machine.values

let test_reduce_stages_logarithmic () =
  (* 16 processors: a binomial reduce takes 4 message stages, so the root's
     finishing clock must be far below what a linear gather would cost. *)
  let r =
    run ~procs:16 (fun ctx ->
        let _ =
          Collectives.reduce ctx ~tag:0 ~root:0 ~bytes:4 ( + ) 1
        in
        Machine.clock ctx)
  in
  let per_stage = 2e-3 in
  Alcotest.(check bool)
    "log stages" true
    (r.Machine.values.(0) < 5.0 *. per_stage)

let suite =
  [
    ( "collectives",
      [
        Alcotest.test_case "bcast" `Quick test_bcast;
        Alcotest.test_case "reduce sum" `Quick test_reduce_sum;
        Alcotest.test_case "allreduce max" `Quick test_allreduce_max;
        Alcotest.test_case "allreduce sum" `Quick test_allreduce_nonroot_value;
        Alcotest.test_case "barrier" `Quick test_barrier_aligns_clocks;
        Alcotest.test_case "scan" `Quick test_scan;
        Alcotest.test_case "gather" `Quick test_gather;
        Alcotest.test_case "ring shift" `Quick test_ring_shift;
        Alcotest.test_case "reduce is logarithmic" `Quick
          test_reduce_stages_logarithmic;
      ] );
  ]
