let seed = 42

let run_torus ~q f =
  (Machine.run ~topology:(Topology.torus2d ~width:q ~height:q ()) f)
    .Machine.values

let run_mesh ~w ~h f =
  (Machine.run ~topology:(Topology.mesh ~width:w ~height:h) f).Machine.values

(* ---------------- shortest paths ---------------- *)

let test_shortest_paths_matches_floyd_warshall () =
  List.iter
    (fun (q, n) ->
      let weight = Workload.graph_weight ~seed ~n ~max_weight:20 in
      let expected = Shortest_paths.floyd_warshall ~n ~weight in
      let got = (run_torus ~q (fun ctx -> Shortest_paths.distances ctx ~n ~weight)).(0) in
      Alcotest.(check (array int))
        (Printf.sprintf "q=%d n=%d" q n)
        expected got)
    [ (1, 5); (2, 8); (3, 9); (4, 12) ]

let test_shortest_paths_sparse_with_infinities () =
  let q = 2 and n = 10 in
  let weight =
    Workload.sparse_graph_weight ~seed ~n ~max_weight:9 ~density:0.3
      ~inf:Shortest_paths.infinity_weight
  in
  let expected = Shortest_paths.floyd_warshall ~n ~weight in
  let got = (run_torus ~q (fun ctx -> Shortest_paths.distances ctx ~n ~weight)).(0) in
  Alcotest.(check (array int)) "sparse graph" expected got

let test_adjusted_n () =
  Alcotest.(check int) "divides" 200 (Shortest_paths.adjusted_n ~n:200 ~q:2);
  Alcotest.(check int) "paper's 201" 201 (Shortest_paths.adjusted_n ~n:200 ~q:3);
  Alcotest.(check int) "204 for 6" 204 (Shortest_paths.adjusted_n ~n:200 ~q:6);
  Alcotest.(check int) "203 for 7" 203 (Shortest_paths.adjusted_n ~n:200 ~q:7)

(* ---------------- gauss ---------------- *)

let close epsilon a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= epsilon) a b

let test_gauss_matches_reference () =
  List.iter
    (fun (w, h, n) ->
      let matrix = Workload.gauss_matrix ~seed ~n in
      let expected = Gauss.reference_solve ~n ~matrix in
      let got = (run_mesh ~w ~h (fun ctx -> Gauss.solve ctx ~n ~matrix)).(0) in
      Alcotest.(check bool)
        (Printf.sprintf "solution %dx%d n=%d" w h n)
        true
        (close 1e-9 expected got))
    [ (1, 1, 6); (2, 1, 7); (2, 2, 8); (3, 2, 12); (4, 2, 16) ]

let test_gauss_residual_small () =
  let n = 12 in
  let matrix = Workload.gauss_matrix ~seed:7 ~n in
  let x = (run_mesh ~w:3 ~h:1 (fun ctx -> Gauss.solve ctx ~n ~matrix)).(0) in
  Alcotest.(check bool) "residual" true (Gauss.residual ~n ~matrix x < 1e-9)

let test_gauss_pivoting_handles_zero_diagonal () =
  let n = 9 in
  let matrix = Workload.gauss_matrix_wild ~seed ~n in
  let expected = Gauss.reference_solve ~n ~matrix in
  let got =
    (run_mesh ~w:3 ~h:1 (fun ctx ->
         Gauss.solve ~pivoting:Gauss.Partial ctx ~n ~matrix)).(0)
  in
  Alcotest.(check bool) "pivoted solution" true (close 1e-6 expected got);
  Alcotest.(check bool) "residual" true
    (Gauss.residual ~n ~matrix got < 1e-6)

let test_gauss_singular_detected () =
  let n = 6 in
  (* two identical rows -> singular *)
  let matrix ix =
    let i = if ix.(0) = 3 then 2 else ix.(0) in
    Workload.gauss_matrix_wild ~seed ~n [| i; ix.(1) |]
  in
  let caught =
    (run_mesh ~w:2 ~h:1 (fun ctx ->
         try
           ignore (Gauss.solve ~pivoting:Gauss.Partial ctx ~n ~matrix);
           false
         with Gauss.Singular -> true)).(0)
  in
  Alcotest.(check bool) "singular raised" true caught

let test_gauss_partial_more_expensive () =
  let n = 16 in
  let matrix = Workload.gauss_matrix ~seed ~n in
  let t pivoting =
    (Machine.run ~topology:(Topology.mesh ~width:2 ~height:2) (fun ctx ->
         Skeletons.destroy ctx (Gauss.run ~pivoting ctx ~n ~matrix)))
      .Machine.time
  in
  Alcotest.(check bool) "pivot search costs time" true
    (t Gauss.Partial > t Gauss.No_pivot_search)

(* ---------------- heat (PDE via ghost cells) ---------------- *)

let plate_boundary ix =
  if ix.(0) = 0 then 100.0
  else if ix.(1) = 0 then 50.0
  else 0.0

let test_heat_matches_reference () =
  let n = 12 and m = 10 in
  let expected, ref_iters =
    Heat.reference ~tol:1e-3 ~n ~m ~boundary:plate_boundary ()
  in
  List.iter
    (fun procs ->
      let r =
        run_mesh ~w:procs ~h:1 (fun ctx ->
            let res = Heat.solve ctx ~tol:1e-3 ~n ~m ~boundary:plate_boundary () in
            (res.Heat.iterations, res.Heat.final_delta, res.Heat.field))
      in
      let iters, delta, field = r.(0) in
      Alcotest.(check int)
        (Printf.sprintf "same iteration count on %d procs" procs)
        ref_iters iters;
      Alcotest.(check bool) "converged" true (delta <= 1e-3);
      let flat = Darray.to_flat field in
      Array.iteri
        (fun i v ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "field elem %d" i)
            expected.(i) v)
        flat)
    [ 1; 2; 4 ]

let test_heat_respects_max_iters () =
  let r =
    run_mesh ~w:2 ~h:1 (fun ctx ->
        let res =
          Heat.solve ctx ~tol:1e-12 ~max_iters:5 ~n:10 ~m:10
            ~boundary:plate_boundary ()
        in
        res.Heat.iterations)
  in
  Alcotest.(check int) "stopped at cap" 5 r.(0)

let test_heat_boundaries_fixed () =
  let r =
    run_mesh ~w:3 ~h:1 (fun ctx ->
        (Heat.solve ctx ~tol:1e-2 ~n:9 ~m:9 ~boundary:plate_boundary ())
          .Heat.field)
  in
  let field = r.(0) in
  Alcotest.(check (float 0.0)) "top edge" 100.0 (Darray.peek field [| 0; 4 |]);
  Alcotest.(check (float 0.0)) "left edge" 50.0 (Darray.peek field [| 4; 0 |]);
  Alcotest.(check (float 0.0)) "bottom edge" 0.0 (Darray.peek field [| 8; 4 |])

(* ---------------- matmul ---------------- *)

let test_matmul_matches_reference () =
  List.iter
    (fun (q, n) ->
      let a = Workload.float_matrix ~seed and b = Workload.float_matrix ~seed:(seed + 1) in
      let expected = Matmul.reference ~n ~a ~b in
      let got = (run_torus ~q (fun ctx -> Matmul.product ctx ~n ~a ~b)).(0) in
      Alcotest.(check bool)
        (Printf.sprintf "matmul q=%d n=%d" q n)
        true
        (close 1e-9 expected got))
    [ (1, 4); (2, 8); (3, 9) ]

(* ---------------- workload determinism ---------------- *)

let test_workload_deterministic () =
  let w1 = Workload.graph_weight ~seed:5 ~n:10 ~max_weight:50 [| 3; 4 |] in
  let w2 = Workload.graph_weight ~seed:5 ~n:10 ~max_weight:50 [| 3; 4 |] in
  Alcotest.(check int) "same seed same weight" w1 w2;
  Alcotest.(check int) "zero diagonal" 0
    (Workload.graph_weight ~seed:5 ~n:10 ~max_weight:50 [| 4; 4 |]);
  let d = Workload.gauss_matrix ~seed:5 ~n:8 [| 2; 2 |] in
  Alcotest.(check bool) "dominant diagonal" true (d > 8.0)

let suite =
  [
    ( "apps",
      [
        Alcotest.test_case "shpaths vs floyd-warshall" `Quick
          test_shortest_paths_matches_floyd_warshall;
        Alcotest.test_case "shpaths sparse" `Quick
          test_shortest_paths_sparse_with_infinities;
        Alcotest.test_case "adjusted n" `Quick test_adjusted_n;
        Alcotest.test_case "gauss vs reference" `Quick
          test_gauss_matches_reference;
        Alcotest.test_case "gauss residual" `Quick test_gauss_residual_small;
        Alcotest.test_case "gauss pivoting" `Quick
          test_gauss_pivoting_handles_zero_diagonal;
        Alcotest.test_case "gauss singular" `Quick test_gauss_singular_detected;
        Alcotest.test_case "pivoting costs more" `Quick
          test_gauss_partial_more_expensive;
        Alcotest.test_case "matmul vs reference" `Quick
          test_matmul_matches_reference;
        Alcotest.test_case "heat vs reference" `Quick
          test_heat_matches_reference;
        Alcotest.test_case "heat max iters" `Quick test_heat_respects_max_iters;
        Alcotest.test_case "heat boundaries" `Quick test_heat_boundaries_fixed;
        Alcotest.test_case "workload determinism" `Quick
          test_workload_deterministic;
      ] );
  ]
