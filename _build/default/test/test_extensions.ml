(* Stencil (ghost cells), task-parallel skeletons and parallel I/O — the
   future-work extensions. *)

let run ~procs f =
  Machine.run ~topology:(Topology.mesh ~width:procs ~height:1) f

(* ---------------- stencil ---------------- *)

let jacobi_reference ~n ~m ~steps init =
  let cur = Array.init (n * m) (fun off -> init (off / m) (off mod m)) in
  let nxt = Array.copy cur in
  let cur = ref cur and nxt = ref nxt in
  for _ = 1 to steps do
    for r = 0 to n - 1 do
      for c = 0 to m - 1 do
        !nxt.((r * m) + c) <-
          (if r = 0 || c = 0 || r = n - 1 || c = m - 1 then !cur.((r * m) + c)
           else
             0.25
             *. (!cur.(((r - 1) * m) + c)
                 +. !cur.(((r + 1) * m) + c)
                 +. !cur.((r * m) + c - 1)
                 +. !cur.((r * m) + c + 1)))
      done
    done;
    let t = !cur in
    cur := !nxt;
    nxt := t
  done;
  !cur

let test_jacobi_matches_reference () =
  let n = 12 and m = 8 and steps = 5 in
  let init r c = if r = 0 then 100.0 else float_of_int ((r * c) mod 7) in
  let expected = jacobi_reference ~n ~m ~steps init in
  List.iter
    (fun procs ->
      let r =
        run ~procs (fun ctx ->
            let mk g =
              Skeletons.create ctx ~gsize:[| n; m |] ~distr:Darray.Default g
            in
            let a = mk (fun ix -> init ix.(0) ix.(1)) in
            let b = mk (fun _ -> 0.0) in
            let cur = ref a and nxt = ref b in
            for _ = 1 to steps do
              Stencil.jacobi_step ctx !cur !nxt;
              let t = !cur in
              cur := !nxt;
              nxt := t
            done;
            !cur)
      in
      let flat = Darray.to_flat r.Machine.values.(0) in
      Array.iteri
        (fun i v ->
          Alcotest.(check (float 1e-12))
            (Printf.sprintf "p=%d elem %d" procs i)
            expected.(i) v)
        flat)
    [ 1; 2; 3; 4 ]

let test_map_halo_radius2 () =
  (* sum over a 5-row vertical window needs radius 2 and must still cost
     only 2 messages per processor *)
  let n = 10 and m = 3 in
  let r =
    run ~procs:2 (fun ctx ->
        let mk g =
          Skeletons.create ctx ~gsize:[| n; m |] ~distr:Darray.Default g
        in
        let a = mk (fun ix -> ix.(0)) in
        let b = mk (fun _ -> 0) in
        let f ~get v ix =
          let r = ix.(0) in
          if r < 2 || r >= n - 2 then v
          else
            get (r - 2) ix.(1) + get (r - 1) ix.(1) + v + get (r + 1) ix.(1)
            + get (r + 2) ix.(1)
        in
        Stencil.map_halo ctx ~radius:2 ~f a b;
        b)
  in
  let flat = Darray.to_flat r.Machine.values.(0) in
  Alcotest.(check int) "row 5 window sum" (3 + 4 + 5 + 6 + 7) flat.(5 * m);
  Alcotest.(check int) "boundary untouched" 0 flat.(0);
  (* 2 processors, one neighbour each: one halo message per processor,
     independent of the radius *)
  Alcotest.(check int) "one halo message per processor" 2
    (Stats.total_msgs r.Machine.stats)

let test_map_halo_rejects_aliasing () =
  let r =
    run ~procs:2 (fun ctx ->
        let a =
          Skeletons.create ctx ~gsize:[| 6; 2 |] ~distr:Darray.Default
            (fun _ -> 0.0)
        in
        try
          Stencil.jacobi_step ctx a a;
          false
        with Invalid_argument _ -> true)
  in
  Alcotest.(check bool) "aliasing rejected" true r.Machine.values.(0)

(* ---------------- divide & conquer ---------------- *)

let test_dc_sum () =
  (* sum a range by splitting it *)
  List.iter
    (fun procs ->
      let r =
        run ~procs (fun ctx ->
            Task_skel.divide_conquer ctx
              ~problem_bytes:(fun _ -> 8)
              ~solution_bytes:(fun _ -> 4)
              ~is_trivial:(fun (lo, hi) -> hi - lo <= 3)
              ~solve:(fun (lo, hi) ->
                let s = ref 0 in
                for i = lo to hi - 1 do
                  s := !s + i
                done;
                !s)
              ~divide:(fun (lo, hi) ->
                let mid = (lo + hi) / 2 in
                ((lo, mid), (mid, hi)))
              ~combine:( + )
              (if Machine.self ctx = 0 then Some (0, 100) else None))
      in
      Alcotest.(check (option int))
        (Printf.sprintf "sum on %d procs" procs)
        (Some 4950) r.Machine.values.(0);
      for i = 1 to procs - 1 do
        Alcotest.(check (option int)) "non-root gets none" None
          r.Machine.values.(i)
      done)
    [ 1; 2; 3; 4; 5; 8 ]

let test_dc_mergesort () =
  let input = [ 5; 3; 9; 1; 7; 2; 8; 6; 4; 0; 5; 5 ] in
  let rec merge a b =
    match (a, b) with
    | [], l | l, [] -> l
    | x :: xs, y :: ys ->
        if x <= y then x :: merge xs b else y :: merge a ys
  in
  let r =
    run ~procs:4 (fun ctx ->
        Task_skel.divide_conquer ctx
          ~problem_bytes:(fun l -> 4 * List.length l)
          ~solution_bytes:(fun l -> 4 * List.length l)
          ~is_trivial:(fun l -> List.length l <= 1)
          ~solve:(fun l -> l)
          ~divide:(fun l ->
            let rec split k acc = function
              | rest when k = 0 -> (List.rev acc, rest)
              | [] -> (List.rev acc, [])
              | x :: rest -> split (k - 1) (x :: acc) rest
            in
            split (List.length l / 2) [] l)
          ~combine:merge
          (if Machine.self ctx = 0 then Some input else None))
  in
  Alcotest.(check (option (list int)))
    "sorted"
    (Some (List.sort compare input))
    r.Machine.values.(0)

let test_dc_trivial_root_problem () =
  let r =
    run ~procs:4 (fun ctx ->
        Task_skel.divide_conquer ctx
          ~problem_bytes:(fun _ -> 4)
          ~solution_bytes:(fun _ -> 4)
          ~is_trivial:(fun _ -> true)
          ~solve:(fun x -> x * 2)
          ~divide:(fun _ -> Alcotest.fail "divide must not run")
          ~combine:(fun _ _ -> Alcotest.fail "combine must not run")
          (if Machine.self ctx = 0 then Some 21 else None))
  in
  Alcotest.(check (option int)) "trivial" (Some 42) r.Machine.values.(0)

(* ---------------- farm ---------------- *)

let test_farm_results_in_order () =
  List.iter
    (fun procs ->
      let tasks = List.init 23 (fun i -> i) in
      let r =
        run ~procs (fun ctx ->
            Task_skel.farm ctx
              ~task_bytes:(fun _ -> 4)
              ~result_bytes:(fun _ -> 4)
              ~worker:(fun x ->
                (* uneven cost: big tasks take longer *)
                Machine.compute ctx (float_of_int (x mod 5) *. 1e-3);
                x * x)
              (if Machine.self ctx = 0 then Some tasks else None))
      in
      Alcotest.(check (option (list int)))
        (Printf.sprintf "squares on %d procs" procs)
        (Some (List.map (fun x -> x * x) tasks))
        r.Machine.values.(0))
    [ 1; 2; 3; 5 ]

let test_farm_balances_uneven_tasks () =
  (* one giant task plus many small ones: dynamic scheduling must clearly
     beat running the farm on a single processor *)
  let tasks = 50.0 :: List.init 30 (fun _ -> 5.0) in
  let farm_time procs =
    (run ~procs (fun ctx ->
         Task_skel.farm ctx
           ~task_bytes:(fun _ -> 8)
           ~result_bytes:(fun _ -> 8)
           ~worker:(fun cost ->
             Machine.compute ctx (cost *. 1e-3);
             cost)
           (if Machine.self ctx = 0 then Some tasks else None)))
      .Machine.time
  in
  let serial = farm_time 1 and parallel = farm_time 4 in
  Alcotest.(check bool)
    (Printf.sprintf "parallel %.4f s beats serial %.4f s by >1.5x" parallel
       serial)
    true
    (parallel *. 1.5 < serial)

let test_farm_empty () =
  let r =
    run ~procs:3 (fun ctx ->
        Task_skel.farm ctx
          ~task_bytes:(fun _ -> 4)
          ~result_bytes:(fun _ -> 4)
          ~worker:(fun (x : int) -> x)
          (if Machine.self ctx = 0 then Some [] else None))
  in
  Alcotest.(check (option (list int))) "empty" (Some []) r.Machine.values.(0)

(* ---------------- parallel I/O ---------------- *)

let test_par_io_roundtrip () =
  List.iter
    (fun (procs, stripes) ->
      let r =
        run ~procs (fun ctx ->
            let a =
              Skeletons.create ctx ~gsize:[| 13; 3 |] ~distr:Darray.Default
                (fun ix -> (10 * ix.(0)) + ix.(1))
            in
            let f = Par_io.write_array ctx ~stripes a in
            let b =
              Skeletons.create ctx ~gsize:[| 13; 3 |] ~distr:Darray.Default
                (fun _ -> -1)
            in
            Par_io.read_array ctx f b;
            (Par_io.bytes_of f, b))
      in
      let bytes, b = r.Machine.values.(0) in
      Alcotest.(check int) "file size" (13 * 3 * 4) bytes;
      Alcotest.(check (array int))
        (Printf.sprintf "roundtrip p=%d s=%d" procs stripes)
        (Array.init 39 (fun off -> (10 * (off / 3)) + (off mod 3)))
        (Darray.to_flat b))
    [ (1, 1); (3, 1); (4, 2); (5, 4) ]

let test_par_io_striping_scales () =
  (* more stripes -> more parallel disk bandwidth -> shorter makespan *)
  let time stripes =
    (run ~procs:8 (fun ctx ->
         let a =
           Skeletons.create ctx ~gsize:[| 64; 64 |] ~distr:Darray.Default
             (fun _ -> 1.0)
         in
         ignore (Par_io.write_array ctx ~stripes a)))
      .Machine.time
  in
  Alcotest.(check bool) "4 stripes beat 1" true (time 4 < time 1)

let suite =
  [
    ( "stencil",
      [
        Alcotest.test_case "jacobi vs reference" `Quick
          test_jacobi_matches_reference;
        Alcotest.test_case "radius 2 window" `Quick test_map_halo_radius2;
        Alcotest.test_case "aliasing rejected" `Quick
          test_map_halo_rejects_aliasing;
      ] );
    ( "task skeletons",
      [
        Alcotest.test_case "d&c sum" `Quick test_dc_sum;
        Alcotest.test_case "d&c mergesort" `Quick test_dc_mergesort;
        Alcotest.test_case "d&c trivial" `Quick test_dc_trivial_root_problem;
        Alcotest.test_case "farm order" `Quick test_farm_results_in_order;
        Alcotest.test_case "farm balance" `Quick
          test_farm_balances_uneven_tasks;
        Alcotest.test_case "farm empty" `Quick test_farm_empty;
      ] );
    ( "parallel io",
      [
        Alcotest.test_case "roundtrip" `Quick test_par_io_roundtrip;
        Alcotest.test_case "striping scales" `Quick
          test_par_io_striping_scales;
      ] );
  ]
