let mk ?(scheme = Distribution.Block) gsize pgrid =
  Distribution.create ~gsize ~pgrid scheme

(* Every global index is owned by exactly one processor, and that
   processor's region contains it at a consistent offset. *)
let check_coverage d =
  let gsize = Distribution.gsize d in
  let p = Distribution.nprocs d in
  let regions = Array.init p (fun rank -> Distribution.region d ~rank) in
  let seen = Array.map (fun r -> Array.make (Distribution.region_count r) 0) regions in
  let b = { Index.lower = Array.map (fun _ -> 0) gsize; upper = gsize } in
  Index.iter b (fun ix ->
      let o = Distribution.owner d ix in
      Alcotest.(check bool) "owner in range" true (o >= 0 && o < p);
      Alcotest.(check bool) "region_mem" true
        (Distribution.region_mem regions.(o) ix);
      let off = Distribution.region_offset regions.(o) ix in
      seen.(o).(off) <- seen.(o).(off) + 1;
      (* no other processor claims it *)
      Array.iteri
        (fun rank reg ->
          if rank <> o then
            Alcotest.(check bool) "exclusive" false
              (Distribution.region_mem reg ix))
        regions);
  Array.iter
    (fun counts ->
      Array.iter (fun c -> Alcotest.(check int) "each offset once" 1 c) counts)
    seen

let test_block_coverage () =
  List.iter check_coverage
    [
      mk [| 10 |] [| 3 |];
      mk [| 12 |] [| 4 |];
      mk [| 7; 9 |] [| 2; 3 |];
      mk [| 8; 8 |] [| 4; 1 |];
      mk [| 5; 11 |] [| 1; 4 |];
      mk [| 9; 9 |] [| 3; 3 |];
    ]

let test_cyclic_coverage () =
  List.iter check_coverage
    [
      mk ~scheme:Distribution.Cyclic [| 10; 3 |] [| 3; 1 |];
      mk ~scheme:(Distribution.Block_cyclic 2) [| 11; 4 |] [| 3; 1 |];
      mk ~scheme:(Distribution.Block_cyclic 4) [| 8; 2 |] [| 2; 1 |];
    ]

let test_block_balance () =
  let d = mk [| 10 |] [| 3 |] in
  let counts =
    List.init 3 (fun rank -> Distribution.local_count d ~rank)
  in
  Alcotest.(check (list int)) "balanced 10/3" [ 3; 3; 4 ] counts

let test_block_contiguous_rows () =
  let d = mk [| 8; 5 |] [| 4; 1 |] in
  match Distribution.region d ~rank:1 with
  | Distribution.Rect b ->
      Alcotest.(check (array int)) "lower" [| 2; 0 |] b.Index.lower;
      Alcotest.(check (array int)) "upper" [| 4; 5 |] b.Index.upper
  | Distribution.Rows _ -> Alcotest.fail "block should be rectangular"

let test_cyclic_rows () =
  let d = mk ~scheme:Distribution.Cyclic [| 7; 2 |] [| 3; 1 |] in
  (match Distribution.region d ~rank:0 with
   | Distribution.Rows { rows; ncols } ->
       Alcotest.(check (array int)) "rank 0 rows" [| 0; 3; 6 |] rows;
       Alcotest.(check int) "ncols" 2 ncols
   | Distribution.Rect _ -> Alcotest.fail "cyclic should be Rows");
  match Distribution.region d ~rank:2 with
  | Distribution.Rows { rows; _ } ->
      Alcotest.(check (array int)) "rank 2 rows" [| 2; 5 |] rows
  | Distribution.Rect _ -> Alcotest.fail "cyclic should be Rows"

let test_block_cyclic_owner () =
  let d = mk ~scheme:(Distribution.Block_cyclic 2) [| 12; 1 |] [| 3; 1 |] in
  let owners = List.init 12 (fun i -> Distribution.owner d [| i; 0 |]) in
  Alcotest.(check (list int))
    "deal blocks of 2"
    [ 0; 0; 1; 1; 2; 2; 0; 0; 1; 1; 2; 2 ]
    owners

let test_block_coords_roundtrip () =
  let d = mk [| 8; 8 |] [| 2; 4 |] in
  for rank = 0 to 7 do
    Alcotest.(check int) "roundtrip" rank
      (Distribution.rank_of_block d (Distribution.block_coords d ~rank))
  done

let test_invalid () =
  Alcotest.(check bool) "cyclic 3d rejected" true
    (try
       ignore (mk ~scheme:Distribution.Cyclic [| 4 |] [| 2 |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "cyclic col split rejected" true
    (try
       ignore (mk ~scheme:Distribution.Cyclic [| 4; 4 |] [| 2; 2 |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "dim mismatch rejected" true
    (try
       ignore (mk [| 4; 4 |] [| 2 |]);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    ( "distribution",
      [
        Alcotest.test_case "block coverage" `Quick test_block_coverage;
        Alcotest.test_case "cyclic coverage" `Quick test_cyclic_coverage;
        Alcotest.test_case "block balance" `Quick test_block_balance;
        Alcotest.test_case "block bounds" `Quick test_block_contiguous_rows;
        Alcotest.test_case "cyclic rows" `Quick test_cyclic_rows;
        Alcotest.test_case "block-cyclic owner" `Quick test_block_cyclic_owner;
        Alcotest.test_case "grid coords roundtrip" `Quick
          test_block_coords_roundtrip;
        Alcotest.test_case "invalid args" `Quick test_invalid;
      ] );
  ]
