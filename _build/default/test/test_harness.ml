(* The experiment harness: formatting, figure data, and — most importantly —
   the shape properties of the reproduced evaluation (DESIGN.md section 5)
   checked at reduced problem sizes. *)

let test_table_render () =
  let s =
    Table.render ~headers:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  (* all non-empty lines share a width *)
  (match lines with
   | header :: rule :: row :: _ ->
       Alcotest.(check int) "widths match" (String.length header)
         (String.length rule);
       Alcotest.(check int) "row width" (String.length header)
         (String.length row)
   | _ -> Alcotest.fail "structure");
  Alcotest.(check string) "fmt_time" "1.23" (Table.fmt_time 1.234);
  Alcotest.(check string) "fmt_opt none" "-" (Table.fmt_opt Table.fmt_time None)

let test_series_csv () =
  let s =
    [ { Series.label = "n = 4"; points = [ (1.0, 2.0); (2.0, 2.5) ] } ]
  in
  let csv = Series.to_csv s in
  Alcotest.(check bool) "header" true
    (String.length csv > 11 && String.sub csv 0 11 = "series,x,y\n");
  Alcotest.(check int) "3 lines" 3
    (List.length (String.split_on_char '\n' (String.trim csv)))

let test_series_plot_smoke () =
  let s =
    [
      { Series.label = "a"; points = [ (4.0, 6.0); (16.0, 5.0) ] };
      { Series.label = "b"; points = [ (4.0, 2.0) ] };
    ]
  in
  let out = Series.plot ~title:"t" ~xlabel:"p" ~ylabel:"r" s in
  Alcotest.(check bool) "mentions legend" true
    (String.length out > 0
    && String.split_on_char '\n' out
       |> List.exists (fun l -> l = "   * = a"))

(* ---------------- shape properties at quick sizes ---------------- *)

let table1 = lazy (Experiments.table1 ~quick:true ())
let table2 = lazy (Experiments.table2 ~quick:true ())

let test_shape_table1 () =
  let rows = Lazy.force table1 in
  List.iter
    (fun r ->
      (match r.Experiments.sp_dpfl with
       | Some d ->
           let ratio = d /. r.Experiments.sp_skil in
           Alcotest.(check bool)
             (Printf.sprintf "dpfl ratio %.2f in [3.5, 8]" ratio)
             true
             (ratio >= 3.5 && ratio <= 8.0)
       | None -> ());
      match r.Experiments.sp_parix_old with
      | Some c ->
          Alcotest.(check bool) "skil beats old C" true
            (r.Experiments.sp_skil < c)
      | None -> ())
    rows;
  (* more processors -> faster *)
  let times = List.map (fun r -> r.Experiments.sp_skil) rows in
  Alcotest.(check bool) "monotone speedup" true
    (List.sort (fun a b -> compare b a) times = times)

let test_shape_table2 () =
  let rows = Lazy.force table2 in
  List.iter
    (fun row ->
      List.iter
        (fun c ->
          (match c.Experiments.g_dpfl with
           | Some d ->
               let ratio = d /. c.Experiments.g_skil in
               Alcotest.(check bool)
                 (Printf.sprintf "dpfl/skil %.2f in [3, 8]" ratio)
                 true
                 (ratio >= 3.0 && ratio <= 8.0)
           | None -> ());
          let sc = c.Experiments.g_skil /. c.Experiments.g_parix in
          Alcotest.(check bool)
            (Printf.sprintf "skil/C %.2f in [0.8, 3]" sc)
            true
            (sc >= 0.8 && sc <= 3.0))
        row.Experiments.cells;
      (* larger n -> larger skil/C (the paper's within-row trend) *)
      let ratios =
        List.map
          (fun c -> c.Experiments.g_skil /. c.Experiments.g_parix)
          row.Experiments.cells
      in
      Alcotest.(check bool) "ratio grows with n" true
        (List.sort compare ratios = ratios))
    rows;
  (* same n, more processors -> smaller DPFL/Skil ratio (comm dominates) *)
  match rows with
  | r1 :: r2 :: _ ->
      let ratio_of row n =
        match
          List.find_opt (fun c -> c.Experiments.g_n = n) row.Experiments.cells
        with
        | Some { Experiments.g_dpfl = Some d; g_skil; _ } -> Some (d /. g_skil)
        | _ -> None
      in
      (match (ratio_of r1 64, ratio_of r2 64) with
       | Some small_p, Some big_p ->
           Alcotest.(check bool) "dpfl ratio shrinks with p" true
             (big_p < small_p)
       | _ -> Alcotest.fail "missing cells")
  | _ -> Alcotest.fail "need two rows"

let test_shape_figure1 () =
  let speedups, slowdowns = Experiments.figure1 (Lazy.force table2) in
  Alcotest.(check bool) "speedup series exist" true (speedups <> []);
  Alcotest.(check bool) "slowdown series exist" true (slowdowns <> []);
  List.iter
    (fun s ->
      List.iter
        (fun (x, y) ->
          Alcotest.(check bool) "x is a processor count" true
            (List.mem x [ 4.0; 8.0; 16.0; 32.0; 64.0 ]);
          Alcotest.(check bool) "speedup positive" true (y > 0.0))
        s.Series.points)
    (speedups @ slowdowns)

let test_shape_claim51 () =
  List.iter
    (fun r ->
      let ratio = r.Experiments.m_skil /. r.Experiments.m_parix in
      Alcotest.(check bool)
        (Printf.sprintf "matmul skil/C %.2f in [1.05, 1.6]" ratio)
        true
        (ratio >= 1.05 && ratio <= 1.6))
    (Experiments.claim51 ~quick:true ())

let test_shape_claim52 () =
  List.iter
    (fun r ->
      let ratio = r.Experiments.c2_full /. r.Experiments.c2_partial in
      Alcotest.(check bool)
        (Printf.sprintf "full/partial %.2f in [1.3, 3]" ratio)
        true
        (ratio >= 1.3 && ratio <= 3.0))
    (Experiments.claim52 ~quick:true ())

let test_shape_scaling () =
  let rows = Experiments.scaling ~quick:true () in
  (match rows with
   | first :: _ ->
       Alcotest.(check int) "starts at 1 proc" 1 first.Experiments.sc_procs;
       Alcotest.(check (float 1e-9)) "speedup 1 at p=1" 1.0
         first.Experiments.sc_speedup
   | [] -> Alcotest.fail "no rows");
  List.iter
    (fun r ->
      Alcotest.(check bool) "efficiency in (0, 1]" true
        (r.Experiments.sc_efficiency > 0.0
        && r.Experiments.sc_efficiency <= 1.0001);
      Alcotest.(check bool) "speedup grows with procs" true
        (r.Experiments.sc_speedup >= 1.0))
    rows;
  let speedups = List.map (fun r -> r.Experiments.sc_speedup) rows in
  Alcotest.(check bool) "monotone" true
    (List.sort compare speedups = speedups)

let test_shape_ablations () =
  let rows = Experiments.ablations ~quick:true () in
  Alcotest.(check int) "three ablations" 3 (List.length rows);
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (a.Experiments.ab_name ^ ": variant not faster")
        true
        (a.Experiments.ab_time_variant >= a.Experiments.ab_time_baseline *. 0.999);
      if a.Experiments.ab_name = "translation by instantiation (gauss)" then
        Alcotest.(check bool) "closures cost > 3x" true
          (a.Experiments.ab_time_variant
           > 3.0 *. a.Experiments.ab_time_baseline))
    rows

let suite =
  [
    ( "harness",
      [
        Alcotest.test_case "table render" `Quick test_table_render;
        Alcotest.test_case "series csv" `Quick test_series_csv;
        Alcotest.test_case "series plot" `Quick test_series_plot_smoke;
        Alcotest.test_case "shape: table 1" `Slow test_shape_table1;
        Alcotest.test_case "shape: table 2" `Slow test_shape_table2;
        Alcotest.test_case "shape: figure 1" `Slow test_shape_figure1;
        Alcotest.test_case "shape: claim 5.1" `Slow test_shape_claim51;
        Alcotest.test_case "shape: claim 5.2" `Slow test_shape_claim52;
        Alcotest.test_case "shape: scaling" `Slow test_shape_scaling;
        Alcotest.test_case "shape: ablations" `Slow test_shape_ablations;
      ] );
  ]
