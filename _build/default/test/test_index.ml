let test_volume () =
  Alcotest.(check int) "2x3x4" 24 (Index.volume [| 2; 3; 4 |]);
  Alcotest.(check int) "empty dim" 0 (Index.volume [| 5; 0 |]);
  Alcotest.(check int) "scalar" 1 (Index.volume [||])

let test_contains () =
  let b = { Index.lower = [| 1; 2 |]; upper = [| 4; 5 |] } in
  Alcotest.(check bool) "inside" true (Index.contains b [| 1; 2 |]);
  Alcotest.(check bool) "upper exclusive" false (Index.contains b [| 4; 2 |]);
  Alcotest.(check bool) "below" false (Index.contains b [| 0; 3 |]);
  Alcotest.(check bool) "wrong dim" false (Index.contains b [| 2 |])

let test_row_major () =
  Alcotest.(check int) "origin" 0 (Index.row_major [| 3; 4 |] [| 0; 0 |]);
  Alcotest.(check int) "last" 11 (Index.row_major [| 3; 4 |] [| 2; 3 |]);
  Alcotest.(check int) "middle" 7 (Index.row_major [| 3; 4 |] [| 1; 3 |])

let test_local_offset () =
  let b = { Index.lower = [| 2; 3 |]; upper = [| 5; 7 |] } in
  Alcotest.(check int) "corner" 0 (Index.local_offset b [| 2; 3 |]);
  Alcotest.(check int) "step row" 4 (Index.local_offset b [| 3; 3 |]);
  Alcotest.(check bool) "outside raises" true
    (try
       ignore (Index.local_offset b [| 5; 3 |]);
       false
     with Invalid_argument _ -> true)

let test_iter_order () =
  let b = { Index.lower = [| 0; 0 |]; upper = [| 2; 2 |] } in
  let acc = ref [] in
  Index.iter b (fun ix -> acc := Array.copy ix :: !acc);
  Alcotest.(check (list (array int)))
    "row major order"
    [ [| 0; 0 |]; [| 0; 1 |]; [| 1; 0 |]; [| 1; 1 |] ]
    (List.rev !acc)

let test_iter_offsets_match () =
  let b = { Index.lower = [| 3; 1 |]; upper = [| 6; 4 |] } in
  let pos = ref 0 in
  Index.iter b (fun ix ->
      Alcotest.(check int) "offset" !pos (Index.local_offset b ix);
      incr pos);
  Alcotest.(check int) "count" 9 !pos

let test_iter_empty () =
  let b = { Index.lower = [| 0; 5 |]; upper = [| 3; 5 |] } in
  let n = ref 0 in
  Index.iter b (fun _ -> incr n);
  Alcotest.(check int) "no calls" 0 !n

let test_iter_1d () =
  let b = { Index.lower = [| 4 |]; upper = [| 7 |] } in
  let acc = ref [] in
  Index.iter b (fun ix -> acc := ix.(0) :: !acc);
  Alcotest.(check (list int)) "1d" [ 4; 5; 6 ] (List.rev !acc)

let suite =
  [
    ( "index",
      [
        Alcotest.test_case "volume" `Quick test_volume;
        Alcotest.test_case "contains" `Quick test_contains;
        Alcotest.test_case "row_major" `Quick test_row_major;
        Alcotest.test_case "local_offset" `Quick test_local_offset;
        Alcotest.test_case "iter order" `Quick test_iter_order;
        Alcotest.test_case "iter offsets" `Quick test_iter_offsets_match;
        Alcotest.test_case "iter empty" `Quick test_iter_empty;
        Alcotest.test_case "iter 1d" `Quick test_iter_1d;
      ] );
  ]
