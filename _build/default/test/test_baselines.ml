let seed = 13

let run_with profile ~topology f =
  Machine.run ~cost:(Cost_model.make profile) ~topology f

let test_parix_shortest_paths_correct () =
  List.iter
    (fun (q, n) ->
      let weight = Workload.graph_weight ~seed ~n ~max_weight:15 in
      let expected = Shortest_paths.floyd_warshall ~n ~weight in
      let r =
        run_with Cost_model.parix_c
          ~topology:(Topology.torus2d ~width:q ~height:q ())
          (fun ctx -> Parix_c.shortest_paths_global ctx ~n ~weight)
      in
      Alcotest.(check (array int))
        (Printf.sprintf "parix shpaths q=%d n=%d" q n)
        expected r.Machine.values.(0))
    [ (1, 4); (2, 8); (3, 9) ]

let test_parix_old_style_also_correct () =
  (* synchronous sends + naive embedding change timing, never results *)
  let q = 2 and n = 8 in
  let weight = Workload.graph_weight ~seed ~n ~max_weight:15 in
  let expected = Shortest_paths.floyd_warshall ~n ~weight in
  let r =
    run_with Cost_model.parix_c_old
      ~topology:(Topology.torus2d ~embedding_optimized:false ~width:q ~height:q ())
      (fun ctx -> Parix_c.shortest_paths_global ctx ~n ~weight)
  in
  Alcotest.(check (array int)) "old style" expected r.Machine.values.(0)

let close epsilon a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= epsilon) a b

let test_parix_gauss_correct () =
  List.iter
    (fun (w, h, n) ->
      let matrix = Workload.gauss_matrix ~seed ~n in
      let expected = Gauss.reference_solve ~n ~matrix in
      let r =
        run_with Cost_model.parix_c ~topology:(Topology.mesh ~width:w ~height:h)
          (fun ctx -> Parix_c.gauss ctx ~n ~matrix)
      in
      Array.iter
        (fun got ->
          Alcotest.(check bool)
            (Printf.sprintf "parix gauss %dx%d n=%d" w h n)
            true (close 1e-9 expected got))
        r.Machine.values)
    [ (1, 1, 5); (2, 1, 8); (2, 2, 9); (3, 2, 13) ]

let test_parix_gauss_pivoting () =
  let n = 9 in
  let matrix = Workload.gauss_matrix_wild ~seed ~n in
  let expected = Gauss.reference_solve ~n ~matrix in
  let r =
    run_with Cost_model.parix_c ~topology:(Topology.mesh ~width:3 ~height:1)
      (fun ctx -> Parix_c.gauss ~pivoting:true ctx ~n ~matrix)
  in
  Alcotest.(check bool) "pivoted" true (close 1e-6 expected r.Machine.values.(0))

let test_parix_matmul_correct () =
  let n = 8 and q = 2 in
  let a = Workload.float_matrix ~seed and b = Workload.float_matrix ~seed:(seed + 3) in
  let expected = Matmul.reference ~n ~a ~b in
  let r =
    run_with Cost_model.parix_c
      ~topology:(Topology.torus2d ~width:q ~height:q ())
      (fun ctx -> Parix_c.matmul_global ctx ~n ~a ~b)
  in
  Alcotest.(check bool) "matmul" true (close 1e-9 expected r.Machine.values.(0))

let test_parix_agrees_with_skeleton_version () =
  (* the hand-written and the skeleton implementations must compute the very
     same distance matrices *)
  let q = 2 and n = 12 in
  let weight = Workload.graph_weight ~seed:77 ~n ~max_weight:30 in
  let topology = Topology.torus2d ~width:q ~height:q () in
  let skel =
    (Machine.run ~topology (fun ctx -> Shortest_paths.distances ctx ~n ~weight))
      .Machine.values.(0)
  in
  let hand =
    (run_with Cost_model.parix_c ~topology (fun ctx ->
         Parix_c.shortest_paths_global ctx ~n ~weight))
      .Machine.values.(0)
  in
  Alcotest.(check (array int)) "same distances" skel hand

let test_dpfl_profile_slower_same_values () =
  let q = 2 and n = 8 in
  let weight = Workload.graph_weight ~seed ~n ~max_weight:15 in
  let topology = Topology.torus2d ~width:q ~height:q () in
  let skil = Machine.run ~topology (fun ctx -> Shortest_paths.distances ctx ~n ~weight) in
  let dpfl = Dpfl.run ~topology (fun ctx -> Shortest_paths.distances ctx ~n ~weight) in
  Alcotest.(check (array int)) "same values" skil.Machine.values.(0)
    dpfl.Machine.values.(0);
  Alcotest.(check bool) "dpfl slower" true (dpfl.Machine.time > skil.Machine.time)

let suite =
  [
    ( "baselines",
      [
        Alcotest.test_case "parix shpaths" `Quick
          test_parix_shortest_paths_correct;
        Alcotest.test_case "parix shpaths old style" `Quick
          test_parix_old_style_also_correct;
        Alcotest.test_case "parix gauss" `Quick test_parix_gauss_correct;
        Alcotest.test_case "parix gauss pivoting" `Quick
          test_parix_gauss_pivoting;
        Alcotest.test_case "parix matmul" `Quick test_parix_matmul_correct;
        Alcotest.test_case "hand = skeleton" `Quick
          test_parix_agrees_with_skeleton_version;
        Alcotest.test_case "dpfl slower, same values" `Quick
          test_dpfl_profile_slower_same_values;
      ] );
  ]
