bin/skilc.mli:
