bin/skilc.ml: Arg Array Ast Cmd Cmdliner Cost_model Emit_c Format Instantiate Interp Lexer List Machine Parser Printf Spmd Stats String Term Topology Typecheck Value
