bin/repro.mli:
