bin/repro.ml: Array Experiments Printf Report Sys
