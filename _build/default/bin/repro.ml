(* repro — regenerate the paper's tables and figures (without the Bechamel
   micro-benchmarks; see bench/main.exe for those). *)

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  Printf.printf
    "Skil (HPDC '96) reproduction — simulated Parsytec MC%s\n\n"
    (if quick then " [quick]" else "");
  Report.print_table1 ~quick ();
  let t2 = Experiments.table2 ~quick () in
  Report.print_table2 t2 ~quick;
  Report.print_figure1 t2;
  Report.print_claim51 ~quick ();
  Report.print_claim52 ~quick ();
  Report.print_ablations ~quick ()
