(* repro — regenerate the paper's tables and figures (without the Bechamel
   micro-benchmarks; see bench/main.exe for those).

   Usage: repro.exe [--quick] [--jobs N] [--sim-domains N] [--trace-out FILE]
          [--profile]

   Independent simulation cells are dispatched to N domains (default: all
   cores); [--sim-domains] additionally shards the simulated machine inside
   each cell.  The output is bit-identical whatever either N is.  [--trace-out FILE]
   re-runs one representative Table-2 Gauss cell with structured tracing on
   and writes a Chrome trace_event JSON; [--profile] prints its per-skeleton
   / per-processor report instead (or as well). *)

let () =
  let argv = Array.to_list Sys.argv in
  let quick = List.mem "--quick" argv in
  let rec opt_of name = function
    | [ flag ] when flag = name -> failwith (name ^ " expects a value")
    | flag :: v :: _ when flag = name -> Some v
    | _ :: rest -> opt_of name rest
    | [] -> None
  in
  let jobs =
    match opt_of "--jobs" argv with
    | None -> Pool.default_jobs ()
    | Some v -> (
        match int_of_string_opt v with
        | Some n when n >= 1 -> n
        | Some _ | None -> failwith "--jobs expects a positive integer")
  in
  (match opt_of "--sim-domains" argv with
  | None -> ()
  | Some v -> (
      match int_of_string_opt v with
      | Some n when n >= 1 -> Experiments.sim_domains := n
      | Some _ | None -> failwith "--sim-domains expects a positive integer"));
  let trace_out = opt_of "--trace-out" argv in
  let want_profile = List.mem "--profile" argv in
  Printf.printf
    "Skil (HPDC '96) reproduction — simulated Parsytec MC%s [jobs %d%s]\n\n"
    (if quick then " [quick]" else "")
    jobs
    (if !Experiments.sim_domains > 1 then
       Printf.sprintf ", sim-domains %d" !Experiments.sim_domains
     else "");
  Report.print_table1 ~jobs ~quick ();
  let t2 = Experiments.table2 ~quick ~jobs () in
  Report.print_table2 t2 ~quick;
  Report.print_figure1 t2;
  Report.print_claim51 ~jobs ~quick ();
  Report.print_claim52 ~jobs ~quick ();
  Report.print_ablations ~jobs ~quick ();
  (if trace_out <> None || want_profile then begin
     let n, (w, h), r = Experiments.traced_gauss_cell ~quick () in
     let nprocs = w * h in
     Printf.printf "== traced cell: gauss n=%d on %dx%d (%.4f s simulated) ==\n"
       n w h r.Machine.time;
     (match trace_out with
      | Some file ->
          let oc = open_out file in
          output_string oc (Profile.chrome_json r.Machine.trace ~nprocs);
          close_out oc;
          Printf.printf
            "chrome trace written to %s (open in chrome://tracing or \
             ui.perfetto.dev)\n"
            file
      | None -> ());
     if want_profile then
       Format.printf "%a@." Profile.pp
         (Profile.of_trace r.Machine.trace ~nprocs ~makespan:r.Machine.time);
     print_newline ()
   end);
  Pool.shutdown ()
