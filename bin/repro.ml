(* repro — regenerate the paper's tables and figures (without the Bechamel
   micro-benchmarks; see bench/main.exe for those).

   Usage: repro.exe [--quick] [--jobs N]

   Independent simulation cells are dispatched to N domains (default: all
   cores); the output is bit-identical whatever N is. *)

let () =
  let argv = Array.to_list Sys.argv in
  let quick = List.mem "--quick" argv in
  let rec jobs_of = function
    | [ "--jobs" ] -> failwith "--jobs expects a positive integer"
    | "--jobs" :: v :: _ -> (
        match int_of_string_opt v with
        | Some n when n >= 1 -> n
        | Some _ | None -> failwith "--jobs expects a positive integer")
    | _ :: rest -> jobs_of rest
    | [] -> Pool.default_jobs ()
  in
  let jobs = jobs_of argv in
  Printf.printf
    "Skil (HPDC '96) reproduction — simulated Parsytec MC%s [jobs %d]\n\n"
    (if quick then " [quick]" else "")
    jobs;
  Report.print_table1 ~jobs ~quick ();
  let t2 = Experiments.table2 ~quick ~jobs () in
  Report.print_table2 t2 ~quick;
  Report.print_figure1 t2;
  Report.print_claim51 ~jobs ~quick ();
  Report.print_claim52 ~jobs ~quick ();
  Report.print_ablations ~jobs ~quick ();
  Pool.shutdown ()
