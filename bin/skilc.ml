(* skilc — driver for the mini-Skil compiler: type-check, translate by
   instantiation, emit C, or execute (sequentially or on the simulated
   parallel machine). *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load path =
  let program = Parser.parse (read_file path) in
  let env = Typecheck.check program in
  (program, env)

(* Every syntax/type diagnostic is printed as [file:line:col: kind: message]
   (the conventional, editor-clickable shape); [?file] is the source being
   processed when one is in scope.  Classification and rendering live in
   {!Errclass} (lib/service), shared with the skild daemon: the process
   exit code is the class code, so a shell script can tell a type error (4)
   from a runtime error (6) from a stalled machine (7) — the same integers
   skild puts in its [code=] reply field. *)
let handle_errors ?file f =
  try f ()
  with e -> (
    match Errclass.of_exn ?file e with
    | Some (cls, msg) ->
        Printf.eprintf "%s\n" msg;
        exit (Errclass.code cls)
    | None -> raise e)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.skil")

let entry_arg =
  Arg.(value & opt string "main" & info [ "entry" ] ~docv:"NAME"
         ~doc:"Entry function.")

let args_arg =
  Arg.(value & opt_all int [] & info [ "arg" ] ~docv:"INT"
         ~doc:"Integer argument for the entry function (repeatable).")

(* ---------------- check ---------------- *)

let check_cmd =
  let run file =
    handle_errors ~file (fun () ->
        let program, _ = load file in
        let funcs =
          List.filter_map
            (function
              | Ast.TFunc f when f.Ast.f_body <> None -> Some f.Ast.f_name
              | _ -> None)
            program
        in
        Printf.printf "%s: OK (%d functions: %s)\n" file (List.length funcs)
          (String.concat ", " funcs))
  in
  Cmd.v (Cmd.info "check" ~doc:"Parse and type-check a Skil program.")
    Term.(const run $ file_arg)

(* ---------------- instantiate ---------------- *)

let instantiate_cmd =
  let run file entry =
    handle_errors ~file (fun () ->
        let program, env = load file in
        let fo = Instantiate.program env program ~entries:[ entry ] in
        Printf.printf
          "instantiated %s from entry %s: %d first-order functions\n" file
          entry
          (List.length
             (List.filter (function Ast.TFunc _ -> true | _ -> false) fo));
        List.iter
          (function
            | Ast.TFunc f ->
                Printf.printf "  %s %s/%d\n"
                  (Ast.type_to_string f.Ast.f_ret)
                  f.Ast.f_name
                  (List.length f.Ast.f_params)
            | _ -> ())
          fo)
  in
  Cmd.v
    (Cmd.info "instantiate"
       ~doc:
         "Translate by instantiation and list the generated first-order \
          monomorphic functions.")
    Term.(const run $ file_arg $ entry_arg)

(* ---------------- emit-c ---------------- *)

let emit_cmd =
  let run file entry optimize standalone args =
    handle_errors ~file (fun () ->
        (* The C emitter is kept on the unoptimized AST on purpose: fused
           argument functions and array_create_const have no counterpart in
           skil_runtime.h, and the emitted C is compared against the
           historical compiler's shape.  Reject the flag instead of
           silently ignoring it. *)
        (match optimize with
         | `None -> ()
         | `Fuse ->
             Printf.eprintf
               "emit-c: --optimize fuse is not supported: the C back end \
                emits the unoptimized instantiated program (fusion applies \
                to the simulated engines only)\n";
             exit 2);
        let program, env = load file in
        let fo = Instantiate.program env program ~entries:[ entry ] in
        if standalone then
          print_string (Emit_c.standalone fo ~entry ~args)
        else print_string (Emit_c.program fo))
  in
  let optimize =
    Arg.(value
         & opt (enum [ ("none", `None); ("fuse", `Fuse) ]) `None
         & info [ "optimize" ] ~docv:"OPT"
             ~doc:"Accepted for interface symmetry with run-par; only \
                   $(b,none) is valid here (the back end emits the \
                   unoptimized program).")
  in
  let standalone =
    Arg.(value & flag
         & info [ "standalone" ]
             ~doc:"Emit a complete single-processor C program (sequential \
                   skeleton runtime and a $(b,main) driver included) whose \
                   output matches $(b,run-par --width 1 --height 1) for the \
                   same $(b,--entry) and $(b,--arg)s; compile it with any C \
                   compiler, no skil_runtime needed.")
  in
  Cmd.v
    (Cmd.info "emit-c"
       ~doc:"Print the message-passing C the compiler back end would emit.")
    Term.(const run $ file_arg $ entry_arg $ optimize $ standalone $ args_arg)

(* ---------------- runtime header ---------------- *)

let runtime_cmd =
  let run () = print_string Emit_c.runtime_header in
  Cmd.v
    (Cmd.info "runtime"
       ~doc:"Print skil_runtime.h, the interface of the parallel runtime \
             emitted C programs compile against.")
    Term.(const run $ const ())

(* ---------------- run (sequential) ---------------- *)

let run_cmd =
  let run file entry args =
    handle_errors ~file (fun () ->
        let program, env = load file in
        let st = Interp.make ~tyenv:env program in
        let v =
          Interp.call st entry (List.map (fun n -> Value.VInt n) args)
        in
        print_string (Interp.output st);
        match v with
        | Value.VUnit -> ()
        | v -> Printf.printf "=> %s\n" (Value.describe v))
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Interpret a Skil program sequentially (skeleton calls are \
          rejected; use run-par).")
    Term.(const run $ file_arg $ entry_arg $ args_arg)

(* ---------------- run-par ---------------- *)

(* The value parsers are shared with the skild daemon's JOB header fields
   ({!Jobspec}): one vocabulary, both doors. *)
let of_jobspec_parser parse print =
  Arg.conv
    ( (fun s -> Result.map_error (fun m -> `Msg m) (parse s)),
      fun ppf v -> Format.fprintf ppf "%s" (print v) )

let profile_conv =
  of_jobspec_parser Jobspec.profile_of_string Jobspec.profile_to_string

let engine_conv =
  of_jobspec_parser Jobspec.engine_of_string Jobspec.engine_to_string

let optimize_conv =
  of_jobspec_parser Jobspec.optimize_of_string Jobspec.optimize_to_string

let collectives_conv =
  of_jobspec_parser Coll_alg.mode_of_string Coll_alg.mode_to_string

let run_par_cmd =
  let run file entry args width height torus profile no_instantiate engine
      no_specialize optimize trace_out want_profile faults_spec fault_seed
      reliable collectives sim_domains native_domains chan_cap =
    handle_errors ~file (fun () ->
        let program, _ = load file in
        let topology =
          if torus then Topology.torus2d ~width ~height ()
          else Topology.mesh ~width ~height
        in
        let nprocs = Topology.nprocs topology in
        let trace = trace_out <> None || want_profile in
        let faults =
          match faults_spec with
          | None -> None
          | Some spec -> (
              match Fault.parse ~seed:fault_seed spec with
              | Ok plan -> Some plan
              | Error msg ->
                  Printf.eprintf "--faults: %s\n" msg;
                  exit 2)
        in
        (match faults with
         | Some plan ->
             Printf.printf "fault plan: %s%s\n" (Fault.describe plan)
               (if reliable then " (reliable transport)" else "")
         | None -> ());
        let r =
          Spmd.run ~instantiate:(not no_instantiate) ~engine
            ~specialize:(not no_specialize) ~optimize ~trace ?faults ~reliable
            ~collectives ~sim_domains ?chan_cap ?native_domains
            ~cost:(Cost_model.make profile) ~topology program
            ~entry
            ~args:(List.map (fun n -> Value.VInt n) args)
        in
        Array.iteri
          (fun i o ->
            if o.Spmd.printed <> "" then
              Printf.printf "[proc %d] %s\n" i o.Spmd.printed)
          r.Machine.values;
        (match engine with
         | `Native ->
             Printf.printf "wall-clock time: %.4f s (native, %d processors)\n"
               r.Machine.time nprocs
         | `Ast | `Compiled ->
             Printf.printf "simulated time: %.4f s (%s, %d processors)\n"
               r.Machine.time profile.Cost_model.profile_name nprocs);
        Format.printf "%a@." Stats.pp_summary r.Machine.stats;
        (match trace_out with
         | Some file ->
             let oc = open_out file in
             output_string oc (Profile.chrome_json r.Machine.trace ~nprocs);
             close_out oc;
             Printf.printf
               "chrome trace written to %s (open in chrome://tracing or \
                ui.perfetto.dev)\n"
               file
         | None -> ());
        if want_profile then
          Format.printf "%a@." Profile.pp
            (Profile.of_trace r.Machine.trace ~nprocs
               ~makespan:r.Machine.time))
  in
  let width =
    Arg.(value & opt int 2 & info [ "width" ] ~docv:"W"
           ~doc:"Processor grid width.")
  in
  let height =
    Arg.(value & opt int 2 & info [ "height" ] ~docv:"H"
           ~doc:"Processor grid height.")
  in
  let torus =
    Arg.(value & flag & info [ "torus" ]
           ~doc:"Use a torus virtual topology (default: mesh).")
  in
  let profile =
    Arg.(value
         & opt profile_conv Cost_model.skil
         & info [ "cost-profile" ] ~docv:"P"
             ~doc:"Cost profile: skil, parix-c, parix-c-old or dpfl.")
  in
  let no_instantiate =
    Arg.(value & flag & info [ "no-instantiate" ]
           ~doc:"Interpret the higher-order source directly instead of the \
                 instantiated first-order program.")
  in
  let engine =
    Arg.(value
         & opt engine_conv `Compiled
         & info [ "engine" ] ~docv:"E"
             ~doc:"Execution engine: $(b,compiled) (translate function \
                   bodies to closures once, the default), $(b,ast) (the \
                   reference tree-walking interpreter; bit-identical to \
                   compiled), or $(b,native) (the compiled closures \
                   executed with real parallelism on OCaml domains: \
                   wall-clock time instead of a simulated makespan, values \
                   identical to the simulator for deterministic-order \
                   programs; incompatible with --faults/--reliable/\
                   --trace-out/--profile/--sim-domains).")
  in
  let no_specialize =
    Arg.(value & flag
         & info [ "no-specialize" ]
             ~doc:"Disable payload specialisation in the compiled engine: \
                   keep every distributed-array element boxed and dispatch \
                   skeleton argument functions generically (A/B escape \
                   hatch; results are bit-identical either way).")
  in
  let optimize =
    Arg.(value
         & opt optimize_conv `None
         & info [ "optimize" ] ~docv:"OPT"
             ~doc:"Optimization level: $(b,none) (the default; output, \
                   makespans, Stats and traces byte-identical to earlier \
                   releases) or $(b,fuse) (skeleton fusion: map/map and \
                   map-into-fold fusion, dead-copy elimination, \
                   constant-initialiser folding and loop-invariant \
                   broadcast/bound hoisting — value-identical results with \
                   fewer charged operations).  Requires the instantiation \
                   pass (incompatible with $(b,--no-instantiate)).")
  in
  let trace_out =
    Arg.(value
         & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Record a structured trace and write it to $(docv) as \
                   Chrome trace_event JSON (load in chrome://tracing or \
                   Perfetto).")
  in
  let want_profile =
    Arg.(value & flag
         & info [ "profile" ]
             ~doc:"Record a structured trace and print per-skeleton and \
                   per-processor metrics, the communication matrix and a \
                   critical-path estimate.")
  in
  let faults_spec =
    Arg.(value
         & opt (some string) None
         & info [ "faults" ] ~docv:"SPEC"
             ~doc:"Inject deterministic faults from $(docv): comma-separated \
                   key=value fields, e.g. \
                   $(b,drop=0.1,dup=0.05,corrupt=0.02,delay=0.1x8,\
                   stall=2\\@0.01+0.005,crash=1\\@0.02,reboot=0.004,ckpt=on). \
                   Replayable: the same spec and seed reproduce the run \
                   bit-for-bit.")
  in
  let fault_seed =
    Arg.(value & opt int 1
         & info [ "fault-seed" ] ~docv:"N"
             ~doc:"Seed for the fault plan's splittable PRNG (overridden by \
                   a seed= field in $(b,--faults)).")
  in
  let reliable =
    Arg.(value & flag
         & info [ "reliable" ]
             ~doc:"Run the machine's Reliable transport: sequence numbers, \
                   receiver-side dedup and ack/timeout/retransmit with \
                   capped exponential backoff, charged in simulated time. \
                   Under it, every deterministic-order program returns its \
                   fault-free values regardless of $(b,--faults) drop \
                   rates.")
  in
  let collectives =
    Arg.(value
         & opt collectives_conv Coll_alg.Legacy
         & info [ "collectives" ] ~docv:"ALG"
             ~doc:"Collective-algorithm mode: $(b,tree) (the seed's binomial \
                   trees, byte-identical to historical output, the default), \
                   $(b,auto) (pick per call from the topology/size cost \
                   model), or a forced algorithm: $(b,binomial), \
                   $(b,pipeline), $(b,vandegeijn), $(b,recdouble), \
                   $(b,ring), $(b,pairwise), $(b,dissemination), \
                   $(b,linear).  A forced algorithm applies wherever it \
                   fits and falls back to auto selection elsewhere.")
  in
  let sim_domains =
    Arg.(value & opt int 1
         & info [ "sim-domains" ] ~docv:"N"
             ~doc:"Shard the simulated machine into $(docv) logical \
                   processes run as a conservative parallel discrete-event \
                   simulation on OCaml domains.  Output, simulated times, \
                   Stats and traces are bit-identical for every $(docv); \
                   only host wall-clock time changes.  Worker domains are \
                   borrowed from the shared pool and clamped to the host's \
                   cores.")
  in
  let native_domains =
    Arg.(value
         & opt (some int) None
         & info [ "native-domains" ] ~docv:"N"
             ~doc:"Native engine only: block the ranks into $(docv) \
                   contiguous groups, each a unit of real parallelism \
                   (default: one rank per group).  Worker domains are \
                   borrowed from the shared pool and clamped to the host's \
                   cores; the logical grouping is always honoured.")
  in
  let chan_cap =
    Arg.(value
         & opt (some int) None
         & info [ "chan-cap" ] ~docv:"N"
             ~doc:"Native engine only: per-link ring-buffer capacity in \
                   messages (default 256, rounded up to a power of two). \
                   Senders block fiber-style when a ring is full.")
  in
  Cmd.v
    (Cmd.info "run-par"
       ~doc:"Execute a Skil program on the simulated Parsytec machine, or \
             with real parallelism under $(b,--engine native).")
    Term.(const run $ file_arg $ entry_arg $ args_arg $ width $ height
          $ torus $ profile $ no_instantiate $ engine $ no_specialize
          $ optimize $ trace_out $ want_profile $ faults_spec $ fault_seed
          $ reliable $ collectives $ sim_domains $ native_domains $ chan_cap)

let () =
  let doc = "the Skil compiler (HPDC '96 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "skilc" ~doc)
          [
            check_cmd; instantiate_cmd; emit_cmd; runtime_cmd; run_cmd;
            run_par_cmd;
          ]))
