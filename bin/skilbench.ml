(* skilbench — load generator and protocol checker for the skild daemon.

   Opens N client connections, streams a windowed mix of jobs — valid
   skeleton programs, compute loops, type/syntax/runtime errors, and in
   [--hostile] mode stalling programs, deadline-doomed loops, malformed
   headers, garbage lines, oversized sources, plus clients that vanish
   mid-job — and checks the daemon's contract from the outside:

   - every reply parses ({!Proto.parse_reply});
   - every job sent with an id is answered exactly once, with a reply
     class the job kind can legitimately produce;
   - valid parallel jobs return output byte-identical to an in-process
     [Spmd.run_source] of the same spec (the run-par equivalence);
   - the daemon stays responsive (PING -> PONG) after the storm.

   Prints jobs/sec and p50/p99 latency; exits nonzero on any violation. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Job corpus                                                          *)

(* a real skeleton pipeline: create, map, fold, print — communicates on
   every fold, so it exercises the collectives under the daemon *)
let par_src =
  "int conv(int v, Index ix) { return v; }\n\
   int sq(int v, Index ix) { return v * v; }\n\
   int addi(int a, int b) { return a + b; }\n\
   int init(Index ix) { return ix[0] + 1; }\n\
   int main() {\n\
  \  array<int> a;\n\
  \  a = array_create(1, {64}, {0}, {-1}, init, DISTR_DEFAULT);\n\
  \  array_map(sq, a, a);\n\
  \  print_int(array_fold(conv, addi, a));\n\
  \  array_destroy(a);\n\
  \  return 0;\n\
   }\n"

(* sequential compute loop, cost scaled by the argument: cheap for
   throughput jobs, effectively unbounded for deadline jobs *)
let loop_src =
  "int main(int n) {\n\
  \  int i;\n\
  \  int s;\n\
  \  s = 0;\n\
  \  for (i = 0; i < n; i = i + 1) { s = s + i % 7; }\n\
  \  return s;\n\
   }\n"

let type_err_src = "int main() { return \"not an int\"; }\n"
let syntax_err_src = "int main( { return 0; }\n"
let runtime_err_src = "int main() { return 1 / 0; }\n"

type kind =
  | Par (* skeleton job: expect OK, output checked *)
  | Compute (* loop with a small n: expect OK *)
  | Type_err
  | Syntax_err
  | Runtime_err
  | Stall (* par job under faults drop=1: quiescence or deadline *)
  | Doomed (* huge loop with a tiny deadline: expect deadline *)
  | Oversized (* src-bytes over the daemon's cap: badreq *)
  | Malformed (* unparseable header field: badreq, framed resync *)
  | Garbage (* not even a request line: anonymous badreq *)

let kind_name = function
  | Par -> "par"
  | Compute -> "compute"
  | Type_err -> "type-err"
  | Syntax_err -> "syntax-err"
  | Runtime_err -> "runtime-err"
  | Stall -> "stall"
  | Doomed -> "doomed"
  | Oversized -> "oversized"
  | Malformed -> "malformed"
  | Garbage -> "garbage"

(* reply classes each kind may legitimately produce ([`Ok] = OK reply);
   Overload is acceptable for anything that reaches admission — shedding
   at the door is correct behaviour under pressure *)
let acceptable kind (outcome : [ `Ok | `Cls of Errclass.t ]) =
  match (kind, outcome) with
  | (Par | Compute), `Ok -> true
  | Type_err, `Cls Errclass.Type_err -> true
  | Syntax_err, `Cls Errclass.Syntax -> true
  | Runtime_err, `Cls Errclass.Runtime -> true
  | Stall, `Cls (Errclass.Stall | Errclass.Deadline) -> true
  | Doomed, `Cls Errclass.Deadline -> true
  | (Oversized | Malformed | Garbage), `Cls Errclass.Badreq -> true
  | ( (Par | Compute | Type_err | Syntax_err | Runtime_err | Stall | Doomed),
      `Cls Errclass.Overload ) ->
      true
  | _ -> false

let spec_of ~id ~kind ~engine ~doom_deadline_ms ~oversized_bytes =
  let d = Jobspec.default in
  let withsrc spec src =
    ({ spec with Jobspec.src_bytes = String.length src }, src)
  in
  match kind with
  | Par -> withsrc { d with Jobspec.id; engine } par_src
  | Compute ->
      withsrc { d with Jobspec.id; args = [ 1000 ]; width = 1; height = 1 }
        loop_src
  | Type_err -> withsrc { d with Jobspec.id } type_err_src
  | Syntax_err -> withsrc { d with Jobspec.id } syntax_err_src
  | Runtime_err ->
      withsrc { d with Jobspec.id; width = 1; height = 1 } runtime_err_src
  | Stall ->
      withsrc
        { d with Jobspec.id; faults = Some "drop=1.0"; deadline_ms = Some 5000 }
        par_src
  | Doomed ->
      withsrc
        {
          d with
          Jobspec.id;
          args = [ 1000000000 ];
          width = 1;
          height = 1;
          deadline_ms = Some doom_deadline_ms;
        }
        loop_src
  | Oversized ->
      (* an honest frame whose declared (and real) body length exceeds the
         daemon's cap: tests the skip-and-reply path *)
      let src = String.make oversized_bytes 'x' in
      withsrc { d with Jobspec.id } src
  | Malformed | Garbage -> ({ d with Jobspec.id }, "")

(* ------------------------------------------------------------------ *)
(* One client connection                                               *)

type outcome_rec = { okind : kind; latency_ms : float; ok : bool }

type client_result = {
  sent : int;
  replies : int;
  oks : int;
  errs : int;
  outcomes : outcome_rec list;
  violations : string list;
}

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     Unix.close fd;
     raise e);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let run_client ~cid ~path ~kinds ~engine ~doom_deadline_ms ~oversized_bytes
    ~window ~expected_par_output =
  let _fd, ic, oc = connect path in
  let outstanding : (string, kind * float) Hashtbl.t = Hashtbl.create 64 in
  let anon_expected = ref 0 in
  let violations = ref [] in
  let outcomes = ref [] in
  let sent = ref 0 and replies = ref 0 and oks = ref 0 and errs = ref 0 in
  let violate fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let record id outcome extra =
    incr replies;
    if id = "-" then begin
      (* anonymous badreq for a garbage line *)
      if !anon_expected > 0 && acceptable Garbage outcome then
        decr anon_expected
      else violate "client %d: unexpected anonymous reply" cid
    end
    else
      match Hashtbl.find_opt outstanding id with
      | None -> violate "client %d: reply for unknown or duplicate id %s" cid id
      | Some (kind, t_send) ->
          Hashtbl.remove outstanding id;
          let latency_ms = (Unix.gettimeofday () -. t_send) *. 1000. in
          let ok = outcome = `Ok in
          if not (acceptable kind outcome) then
            violate "client %d: %s job %s answered %s" cid (kind_name kind) id
              (match outcome with
              | `Ok -> "OK"
              | `Cls c -> "class=" ^ Errclass.name c);
          (match (kind, outcome, extra) with
          | Par, `Ok, Some output when output <> expected_par_output ->
              violate
                "client %d: par job %s output differs from direct run-par \
                 (%d vs %d bytes)"
                cid id (String.length output)
                (String.length expected_par_output)
          | _ -> ());
          outcomes := { okind = kind; latency_ms; ok } :: !outcomes
  in
  let read_reply () =
    match input_line ic with
    | exception End_of_file ->
        violate "client %d: connection closed with %d outstanding" cid
          (Hashtbl.length outstanding);
        false
    | line -> (
        match Proto.parse_reply line with
        | Error e ->
            incr replies;
            violate "client %d: unparseable reply (%s): %s" cid e line;
            true
        | Ok (Proto.Ok_reply { id; output; _ }) ->
            incr oks;
            record id `Ok (Some output);
            true
        | Ok (Proto.Err_reply { id; cls; _ }) ->
            incr errs;
            record id (`Cls cls) None;
            true)
  in
  let pending () = Hashtbl.length outstanding + !anon_expected in
  let send_one i kind =
    let id = Printf.sprintf "c%d-%d" cid i in
    (match kind with
    | Garbage ->
        output_string oc "HELLO SKILD\n";
        incr anon_expected
    | Malformed ->
        (* parseable kv line, hostile field value; the declared src-bytes
           frame a real body so the daemon can resync *)
        let body = "void main() {}\n" in
        Printf.fprintf oc "JOB id=%s width=banana src-bytes=%d\n%s\n" id
          (String.length body) body;
        Hashtbl.replace outstanding id (kind, Unix.gettimeofday ())
    | _ ->
        let spec, src =
          spec_of ~id ~kind ~engine ~doom_deadline_ms ~oversized_bytes
        in
        output_string oc (Proto.render_job_header (Jobspec.to_kv spec));
        output_char oc '\n';
        output_string oc src;
        output_char oc '\n';
        Hashtbl.replace outstanding id (kind, Unix.gettimeofday ()));
    flush oc;
    incr sent
  in
  (try
     List.iteri
       (fun i kind ->
         send_one i kind;
         while pending () >= window && read_reply () do
           ()
         done)
       kinds;
     while pending () > 0 && read_reply () do
       ()
     done
   with e -> violate "client %d: %s" cid (Printexc.to_string e));
  (try close_out oc with _ -> ());
  {
    sent = !sent;
    replies = !replies;
    oks = !oks;
    errs = !errs;
    outcomes = !outcomes;
    violations = List.rev !violations;
  }

(* a client that submits a long job and vanishes: the daemon must cancel
   the orphan and stay healthy; nothing to assert client-side *)
let run_vanisher ~path =
  match connect path with
  | exception _ -> ()
  | fd, _ic, oc ->
      let spec, src =
        spec_of ~id:"vanisher" ~kind:Doomed ~engine:`Compiled
          ~doom_deadline_ms:10000 ~oversized_bytes:0
      in
      (try
         output_string oc (Proto.render_job_header (Jobspec.to_kv spec));
         output_char oc '\n';
         output_string oc src;
         output_char oc '\n';
         flush oc
       with _ -> ());
      Thread.delay 0.05;
      (* abandon the connection without QUIT *)
      try Unix.close fd with _ -> ()

(* ------------------------------------------------------------------ *)
(* Mix and aggregation                                                 *)

let hostile_cycle =
  [
    Par; Compute; Type_err; Par; Syntax_err; Runtime_err; Par; Compute;
    Malformed; Garbage; Par; Doomed; Compute; Stall; Par; Compute;
  ]

let benign_cycle = [ Par; Compute ]

let mix ~hostile ~jobs ~oversized =
  let cycle = if hostile then hostile_cycle else benign_cycle in
  let n = List.length cycle in
  let base = List.init jobs (fun i -> List.nth cycle (i mod n)) in
  if hostile && oversized then Oversized :: base else base

let percentile sorted p =
  match Array.length sorted with
  | 0 -> nan
  | n -> sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

(* ------------------------------------------------------------------ *)
(* Main                                                                *)

let main path jobs clients window hostile engine_s doom_deadline_ms
    oversized_bytes =
  let engine =
    match Jobspec.engine_of_string engine_s with
    | Ok e -> e
    | Error e ->
        prerr_endline ("skilbench: " ^ e);
        exit 2
  in
  (* the reference output a daemon par job must reproduce byte-for-byte *)
  let expected_par_output =
    let d = Jobspec.default in
    let r =
      Spmd.run_source ~engine ~topology:(Jobspec.topology d) par_src
        ~entry:"main" ~args:[]
    in
    let b = Buffer.create 256 in
    Array.iteri
      (fun i (o : Spmd.outcome) ->
        if o.Spmd.printed <> "" then
          Buffer.add_string b (Printf.sprintf "[proc %d] %s\n" i o.Spmd.printed))
      r.Machine.values;
    Buffer.contents b
  in
  let t0 = Unix.gettimeofday () in
  let vanishers =
    if hostile then
      List.init 2 (fun _ -> Thread.create (fun () -> run_vanisher ~path) ())
    else []
  in
  let slots = Array.make clients None in
  let threads =
    List.init clients (fun cid ->
        Thread.create
          (fun () ->
            slots.(cid) <-
              Some
                (run_client ~cid ~path
                   ~kinds:(mix ~hostile ~jobs ~oversized:(cid = 0))
                   ~engine ~doom_deadline_ms ~oversized_bytes ~window
                   ~expected_par_output))
          ())
  in
  List.iter Thread.join threads;
  List.iter Thread.join vanishers;
  let results =
    Array.to_list slots
    |> List.mapi (fun cid r ->
           match r with
           | Some r -> r
           | None ->
               {
                 sent = 0;
                 replies = 0;
                 oks = 0;
                 errs = 0;
                 outcomes = [];
                 violations = [ Printf.sprintf "client %d died" cid ];
               })
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let sum f = List.fold_left (fun a r -> a + f r) 0 results in
  let sent = sum (fun r -> r.sent)
  and replies = sum (fun r -> r.replies)
  and oks = sum (fun r -> r.oks)
  and errs = sum (fun r -> r.errs) in
  let violations = List.concat_map (fun r -> r.violations) results in
  let ok_latencies =
    List.concat_map
      (fun r ->
        List.filter_map
          (fun o -> if o.ok then Some o.latency_ms else None)
          r.outcomes)
      results
    |> Array.of_list
  in
  Array.sort compare ok_latencies;
  (* the daemon must still answer after the storm *)
  let post_violations =
    match connect path with
    | exception e ->
        [ "post-storm connect failed: " ^ Printexc.to_string e ]
    | _fd, ic, oc -> (
        try
          output_string oc "PING\n";
          flush oc;
          let pong = input_line ic in
          output_string oc "STATS\n";
          flush oc;
          let stats = input_line ic in
          Printf.printf "%s\n" stats;
          output_string oc "QUIT\n";
          flush oc;
          (try close_out oc with _ -> ());
          if pong <> "PONG" then [ "post-storm PING answered " ^ pong ]
          else []
        with e -> [ "post-storm PING failed: " ^ Printexc.to_string e ])
  in
  let violations = violations @ post_violations in
  Printf.printf
    "skilbench: clients=%d sent=%d replies=%d ok=%d err=%d elapsed=%.2fs\n"
    clients sent replies oks errs elapsed;
  Printf.printf "skilbench: jobs/sec=%.1f\n"
    (float_of_int replies /. elapsed);
  if Array.length ok_latencies > 0 then
    Printf.printf "skilbench: p50=%.2fms p99=%.2fms\n"
      (percentile ok_latencies 0.50)
      (percentile ok_latencies 0.99);
  if violations = [] then begin
    print_endline "skilbench: PASS";
    exit 0
  end
  else begin
    List.iter (fun v -> Printf.printf "skilbench: VIOLATION: %s\n" v)
      violations;
    Printf.printf "skilbench: FAIL (%d violations)\n" (List.length violations);
    exit 1
  end

let path_arg =
  Arg.(required
       & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket of a running skild.")

let jobs_arg =
  Arg.(value & opt int 64
       & info [ "jobs" ] ~docv:"N" ~doc:"Jobs per client connection.")

let clients_arg =
  Arg.(value & opt int 4
       & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client connections.")

let window_arg =
  Arg.(value & opt int 8
       & info [ "window" ] ~docv:"N"
           ~doc:"Pipelined jobs outstanding per connection.")

let hostile_arg =
  Arg.(value & flag
       & info [ "hostile" ]
           ~doc:"Mix in malformed headers, garbage lines, oversized \
                 sources, stalling programs, deadline-doomed jobs and \
                 clients that disconnect mid-job.")

let engine_arg =
  Arg.(value & opt string "compiled"
       & info [ "engine" ] ~docv:"E"
           ~doc:"Engine for the valid parallel jobs (ast, compiled, \
                 native).")

let doom_arg =
  Arg.(value & opt int 30
       & info [ "doom-deadline-ms" ] ~docv:"MS"
           ~doc:"Deadline given to the deadline-doomed jobs.")

let oversized_arg =
  Arg.(value & opt int ((1 lsl 20) + 1)
       & info [ "oversized-bytes" ] ~docv:"N"
           ~doc:"Body size of the oversized job; must exceed the daemon's \
                 --max-src-bytes.")

let () =
  let doc = "load generator and protocol checker for skild" in
  exit
    (Cmd.eval
       (Cmd.v (Cmd.info "skilbench" ~doc)
          Term.(const main $ path_arg $ jobs_arg $ clients_arg $ window_arg
                $ hostile_arg $ engine_arg $ doom_arg $ oversized_arg)))
