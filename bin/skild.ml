(* skild — the Skil job daemon.

   A thin shell around {!Service}: bind a Unix-domain socket (or serve
   stdin/stdout with [--stdio]), hand every connection to [Service.serve]
   on its own thread, and translate SIGTERM/SIGINT into a graceful drain —
   stop admitting, answer everything accepted, exit 0.  All policy
   (crash isolation, deadlines, retries, backpressure, caching) lives in
   lib/service; this file only owns sockets, threads and signals. *)

open Cmdliner

let log quiet fmt =
  Printf.ksprintf
    (fun s -> if not quiet then Printf.eprintf "skild: %s\n%!" s)
    fmt

(* Buffered-channel IO for [Service.serve].  [input_line] strips the
   newline, which is exactly the framing the protocol wants; a source body
   is read verbatim with [really_input_string] and its trailing newline
   shows up as the following empty line. *)
let channel_io ic oc =
  let read_line () = try Some (input_line ic) with End_of_file -> None in
  let read_exact n =
    try Some (really_input_string ic n) with End_of_file -> None
  in
  let write line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  (read_line, read_exact, write)

(* Drain on SIGTERM/SIGINT.  The handler only flips an atomic (it may run
   at a safe point on any thread, so it must not lock or block); a
   dedicated thread notices and performs the drain — blocking in
   [Service.drain] is perfectly fine on a plain thread. *)
let install_drainer service ~quiet =
  let fired = Atomic.make false in
  let handler _ = Atomic.set fired true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle handler);
  Sys.set_signal Sys.sigint (Sys.Signal_handle handler);
  ignore
    (Thread.create
       (fun () ->
         while not (Atomic.get fired) do
           Thread.delay 0.05
         done;
         log quiet "signal received; draining";
         Service.drain service;
         log quiet "drained; %s" (Service.stats_line service);
         exit 0)
       ()
      : Thread.t)

let serve_stdio service =
  let read_line, read_exact, write = channel_io stdin stdout in
  Service.serve service ~read_line ~read_exact ~write

let serve_socket service path ~quiet =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX path);
  Unix.listen srv 64;
  at_exit (fun () ->
      (try Unix.close srv with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ());
  log quiet "listening on %s" path;
  let handle fd =
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let read_line, read_exact, write = channel_io ic oc in
    (* serve never lets job input escape; anything raised here is socket
       trouble on this one connection — drop it, keep the daemon *)
    (try Service.serve service ~read_line ~read_exact ~write
     with _ -> ());
    try close_out oc (* closes fd *) with _ -> ()
  in
  let rec accept_loop () =
    (match Unix.accept srv with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | fd, _ -> ignore (Thread.create handle fd : Thread.t));
    accept_loop ()
  in
  accept_loop ()

let main socket stdio workers queue_cap cache_cap deadline_ms retries
    max_src_bytes max_native quiet =
  let d = Service.default_config in
  let config =
    {
      d with
      Service.workers;
      queue_cap;
      cache_cap;
      default_deadline_ms = deadline_ms;
      default_retries = retries;
      max_src_bytes;
      max_native;
    }
  in
  let service = Service.create ~config () in
  install_drainer service ~quiet;
  (match (socket, stdio) with
  | Some path, false -> serve_socket service path ~quiet
  | None, true | None, false -> serve_stdio service
  | Some _, true ->
      prerr_endline "skild: --socket and --stdio are mutually exclusive";
      exit 2);
  (* stdio client finished: drain what it submitted, then leave *)
  Service.drain service;
  log quiet "%s" (Service.stats_line service);
  Service.shutdown service

let socket_arg =
  Arg.(value
       & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Listen on a Unix-domain socket at $(docv), one thread per \
                 connection.  Default (and $(b,--stdio)): serve a single \
                 session on stdin/stdout.")

let stdio_arg =
  Arg.(value & flag
       & info [ "stdio" ]
           ~doc:"Serve one session on stdin/stdout (the default when \
                 $(b,--socket) is absent).")

let workers_arg =
  Arg.(value & opt int Service.default_config.Service.workers
       & info [ "workers" ] ~docv:"N"
           ~doc:"Jobs allowed to run concurrently (on the shared domain \
                 crew).")

let queue_cap_arg =
  Arg.(value & opt int Service.default_config.Service.queue_cap
       & info [ "queue-cap" ] ~docv:"N"
           ~doc:"Bounded admission queue; beyond it jobs are shed with \
                 $(b,ERR class=overload).")

let cache_cap_arg =
  Arg.(value & opt int Service.default_config.Service.cache_cap
       & info [ "cache-cap" ] ~docv:"N"
           ~doc:"Compiled-program cache entries (LRU beyond this).")

let deadline_arg =
  Arg.(value & opt int Service.default_config.Service.default_deadline_ms
       & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Default per-job wall-clock deadline when the job carries \
                 no $(b,deadline-ms) field; 0 disables.")

let retries_arg =
  Arg.(value & opt int Service.default_config.Service.default_retries
       & info [ "retries" ] ~docv:"N"
           ~doc:"Default transient-failure retry budget (capped \
                 exponential backoff).")

let max_src_arg =
  Arg.(value & opt int Service.default_config.Service.max_src_bytes
       & info [ "max-src-bytes" ] ~docv:"N"
           ~doc:"Reject job sources larger than $(docv) bytes with \
                 $(b,ERR class=badreq).")

let max_native_arg =
  Arg.(value & opt int Service.default_config.Service.max_native
       & info [ "max-native" ] ~docv:"N"
           ~doc:"Concurrent native-engine jobs; excess jobs back off and \
                 retry.")

let quiet_arg =
  Arg.(value & flag & info [ "quiet" ] ~doc:"No stderr chatter.")

let () =
  let doc = "the Skil job daemon (crash-isolated, backpressured)" in
  let cmd =
    Cmd.v
      (Cmd.info "skild" ~doc
         ~man:
           [
             `S Manpage.s_description;
             `P
               "skild accepts Skil jobs over a line-framed protocol \
                ($(b,JOB key=value ...) header, $(b,src-bytes) of source, \
                one newline), executes them with the same pipeline as \
                $(b,skilc run-par), and answers every accepted job exactly \
                once ($(b,OK ...) or $(b,ERR class=... code=...)).  No job \
                input can kill the daemon.  SIGTERM drains gracefully: \
                admissions stop, accepted jobs finish, exit 0.";
           ])
      Term.(const main $ socket_arg $ stdio_arg $ workers_arg $ queue_cap_arg
            $ cache_cap_arg $ deadline_arg $ retries_arg $ max_src_arg
            $ max_native_arg $ quiet_arg)
  in
  exit (Cmd.eval cmd)
